package harness

import (
	"strings"
	"testing"

	"axmemo/internal/workloads"
)

func TestStandardConfigsMatchPaperSweep(t *testing.T) {
	cfgs := StandardConfigs()
	want := []string{"L1 (4KB)", "L1 (8KB)", "L1 (8KB)+L2 (256KB)", "L1 (8KB)+L2 (512KB)", "Software LUT"}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs, want %d", len(cfgs), len(want))
	}
	for i, c := range cfgs {
		if c.Name != want[i] {
			t.Errorf("config %d = %q, want %q", i, c.Name, want[i])
		}
	}
	if cfgs[4].Mode != ModeSoftLUT {
		t.Error("last config is not the software LUT")
	}
}

func TestRunBaselineVsHardware(t *testing.T) {
	w, err := workloads.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if base.HitRate != 0 || base.MemoInsns != 0 {
		t.Errorf("baseline reports memo activity: %+v", base)
	}
	hw, err := Run(w, BestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hw.Cycles >= base.Cycles {
		t.Errorf("hardware config not faster: %d vs %d", hw.Cycles, base.Cycles)
	}
	if hw.EnergyPJ >= base.EnergyPJ {
		t.Errorf("hardware config not cheaper: %.3g vs %.3g pJ", hw.EnergyPJ, base.EnergyPJ)
	}
	if hw.HitRate < 0.8 {
		t.Errorf("hit rate = %.3f", hw.HitRate)
	}
}

func TestRunATMAndSoft(t *testing.T) {
	w, err := workloads.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSoftLUT, ModeATM} {
		r, err := Run(w, Config{Name: "m", Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if r.HitRate <= 0 {
			t.Errorf("mode %d: no software hits", mode)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(1)
	w, _ := workloads.ByName("fft")
	a, err := s.Baseline(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Baseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("baseline not cached")
	}
	c1, err := s.Under(w, BestConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Under(w, BestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("config run not cached")
	}
	if names := s.SortedConfigNames("fft"); len(names) != 1 {
		t.Errorf("cached configs = %v", names)
	}
}

// TestFig7aShape asserts the qualitative claims of Fig. 7a on the full
// sweep: larger hardware configurations win on average, jmeint never
// does, blackscholes leads, and the software LUT trails the hardware.
func TestFig7aShape(t *testing.T) {
	s := NewSuite(1)
	speed := func(w *workloads.Workload, cfg Config) float64 {
		base, err := s.Baseline(w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Under(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(base.Cycles) / float64(r.Cycles)
	}
	var bestSum, smallSum float64
	for _, w := range workloads.All() {
		sBest := speed(w, BestConfig())
		sSmall := speed(w, HW("L1 (4KB)", 4, 0))
		sSoft := speed(w, Config{Name: "Software LUT", Mode: ModeSoftLUT})
		bestSum += sBest
		smallSum += sSmall
		switch w.Name {
		case "jmeint":
			if sBest > 1.05 {
				t.Errorf("jmeint speedup %.2f, want ~none", sBest)
			}
		case "blackscholes":
			if sBest < 3 {
				t.Errorf("blackscholes speedup %.2f, want the largest", sBest)
			}
			if sSoft >= sBest {
				t.Errorf("software LUT (%.2f) should trail hardware (%.2f) on blackscholes", sSoft, sBest)
			}
		case "sobel", "jpeg":
			if sSoft >= 1.0 {
				t.Errorf("%s: software LUT speedup %.2f, paper reports a slowdown", w.Name, sSoft)
			}
		}
	}
	if bestSum <= smallSum {
		t.Errorf("largest config (avg %.2f) not better than smallest (avg %.2f)", bestSum/10, smallSum/10)
	}
}

// TestFig9Monotonic asserts hit rate grows (or holds) with LUT capacity.
func TestFig9Monotonic(t *testing.T) {
	s := NewSuite(1)
	for _, w := range workloads.All() {
		small, err := s.Under(w, HW("L1 (4KB)", 4, 0))
		if err != nil {
			t.Fatal(err)
		}
		big, err := s.Under(w, BestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if big.HitRate+0.01 < small.HitRate {
			t.Errorf("%s: hit rate fell with capacity: %.3f -> %.3f", w.Name, small.HitRate, big.HitRate)
		}
	}
}

// TestFig10aQualityBounds asserts the paper's quality claim: output error
// below ~1% everywhere with the Table 2 truncations, and the monitor
// never trips.
func TestFig10aQualityBounds(t *testing.T) {
	s := NewSuite(1)
	for _, w := range workloads.All() {
		r, err := s.Under(w, BestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if r.Quality > 0.012 {
			t.Errorf("%s quality loss %.4f, want ≤ ~1%%", w.Name, r.Quality)
		}
		if r.Monitor.Disabled {
			t.Errorf("%s: quality monitor tripped at Table 2 settings", w.Name)
		}
	}
}

func TestFigureFormatting(t *testing.T) {
	fig := &Figure{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"r1", "v"}, {"longer-name", "w"}},
		Notes:  []string{"hello"},
	}
	out := fig.String()
	for _, want := range []string{"X — demo", "longer-name", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Static(t *testing.T) {
	fig := Table2()
	if len(fig.Rows) != 10 {
		t.Fatalf("Table 2 has %d rows", len(fig.Rows))
	}
	if fig.Rows[0][0] != "blackscholes" || fig.Rows[9][0] != "srad" {
		t.Error("Table 2 order wrong")
	}
}

func TestTable5Static(t *testing.T) {
	fig := Table5()
	if len(fig.Rows) != 5 {
		t.Fatalf("Table 5 has %d rows", len(fig.Rows))
	}
	if !strings.Contains(fig.Notes[0], "2.08%") {
		t.Errorf("Table 5 note missing the paper's area overhead: %v", fig.Notes)
	}
}

func TestTable1RunsOnAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 traces every benchmark")
	}
	fig, err := Table1(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 10 {
		t.Fatalf("Table 1 has %d rows", len(fig.Rows))
	}
	// Every benchmark must expose at least one candidate region.
	for _, row := range fig.Rows {
		if row[1] == "0" {
			t.Errorf("%s: no dynamic candidate subgraphs found", row[0])
		}
	}
}

func TestCRCWidthOverride(t *testing.T) {
	w, _ := workloads.ByName("fft")
	cfg := BestConfig()
	cfg.CRCWidth = 16
	cfg.TrackCollisions = true
	if _, err := Run(w, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.CRCWidth = 13
	if _, err := Run(w, cfg); err == nil {
		t.Error("invalid CRC width accepted")
	}
}

func TestAblationFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	s := NewSuite(1)
	crcFig, err := s.AblationCRCWidth()
	if err != nil {
		t.Fatal(err)
	}
	if len(crcFig.Rows) != 9 {
		t.Fatalf("CRC ablation rows = %d, want 9", len(crcFig.Rows))
	}
	// CRC-16 must show collisions somewhere; CRC-32/64 must show none.
	saw16 := false
	for _, row := range crcFig.Rows {
		if row[1] == "16" && row[2] != "0" {
			saw16 = true
		}
		if (row[1] == "32" || row[1] == "64") && row[2] != "0" {
			t.Errorf("CRC-%s collided: %v", row[1], row)
		}
	}
	if !saw16 {
		t.Error("CRC-16 never collided; ablation shows nothing")
	}

	adFig, err := s.AblationAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if len(adFig.Rows) != 3 {
		t.Fatalf("adaptive ablation rows = %d", len(adFig.Rows))
	}

	rateFig, err := s.AblationCRCRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rateFig.Rows {
		if row[3] < "1" {
			t.Errorf("unrolling slowed %s down: %v", row[0], row)
		}
	}
}

func TestFigureBars(t *testing.T) {
	fig := &Figure{
		ID:     "B",
		Title:  "bars",
		Header: []string{"name", "value"},
		Rows:   [][]string{{"alpha", "2.00x"}, {"beta", "1.00x"}, {"bad", "n/a"}},
	}
	out := fig.Bars(1, 10)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "##########") {
		t.Errorf("bars missing full-scale row:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Errorf("bars missing half-scale row:\n%s", out)
	}
	if strings.Contains(out, "bad") {
		t.Errorf("unparsable row rendered:\n%s", out)
	}
	if (&Figure{Header: []string{"x"}}).Bars(0, 10) != "" {
		t.Error("empty figure rendered bars")
	}
}
