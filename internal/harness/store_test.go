package harness

import (
	"os"
	"path/filepath"
	"testing"

	"axmemo/internal/obs"
	"axmemo/internal/store"
	"axmemo/internal/workloads"
)

// execCount reads the suite's executed-simulation counter.
func execCount(s *Suite) uint64 {
	return s.Obs.Reg().NewCounter("harness_cell_exec_total", obs.Opts{}).Value()
}

func storeSuite(t *testing.T, dir string) *Suite {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(1)
	s.Parallel = 2
	s.Obs = obs.NewSink()
	s.Store = st
	st.Attach(s.Obs)
	return s
}

func TestCellStoreKeyStability(t *testing.T) {
	a := CellStoreKey("sobel", BestConfig())
	if a != CellStoreKey("sobel", BestConfig()) {
		t.Fatal("key not deterministic")
	}
	if a == CellStoreKey("srad", BestConfig()) {
		t.Fatal("workload not in key")
	}
	if a == CellStoreKey("sobel", HW("L1 (4KB)", 4, 0)) {
		t.Fatal("config not in key")
	}
	// Observability settings must NOT change the key: instrumented and
	// bare runs share cells.
	cfg := BestConfig()
	cfg.Obs = obs.NewSink()
	cfg.ObsPID = 7
	if a != CellStoreKey("sobel", cfg) {
		t.Fatal("obs fields leaked into the key")
	}
	// Neither may the execution engine: the engines are differentially
	// tested to be result-identical, so tree and bytecode runs share
	// cells.
	eng := BestConfig()
	eng.Engine = "tree"
	if a != CellStoreKey("sobel", eng) {
		t.Fatal("engine selector leaked into the key")
	}
	scaled := BestConfig()
	scaled.Scale = 2
	if a == CellStoreKey("sobel", scaled) {
		t.Fatal("scale not in key")
	}
}

// TestSuiteStoreReuse is the cross-process cache contract: a fresh
// suite pointed at a store directory populated by an earlier suite must
// render the same bytes with zero simulations executed.
func TestSuiteStoreReuse(t *testing.T) {
	dir := t.TempDir()

	cold := storeSuite(t, dir)
	fig1, err := cold.Generate("ABL-RATE")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SweepCells("ABL-RATE")
	if err != nil {
		t.Fatal(err)
	}
	if got := execCount(cold); got != uint64(len(cells)) {
		t.Fatalf("cold sweep executed %d cells, want %d", got, len(cells))
	}
	if st := cold.Store.Stats(); st.Misses != uint64(len(cells)) || st.Entries != len(cells) {
		t.Fatalf("cold store stats = %+v, want %d misses/entries", st, len(cells))
	}
	if err := cold.Store.Close(); err != nil {
		t.Fatal(err)
	}

	warm := storeSuite(t, dir)
	fig2, err := warm.Generate("ABL-RATE")
	if err != nil {
		t.Fatal(err)
	}
	if fig1.String() != fig2.String() {
		t.Fatalf("store-served figure differs:\n--- cold ---\n%s--- warm ---\n%s", fig1, fig2)
	}
	if got := execCount(warm); got != 0 {
		t.Fatalf("warm sweep executed %d cells, want 0", got)
	}
	if st := warm.Store.Stats(); st.Hits != uint64(len(cells)) {
		t.Fatalf("warm store stats = %+v, want %d hits", st, len(cells))
	}
}

// TestSuiteStoreCorruptionRecovers: a truncated blob must read as a
// miss, recompute (one execution), repair the entry on disk, and still
// produce the identical result.
func TestSuiteStoreCorruptionRecovers(t *testing.T) {
	dir := t.TempDir()
	cell := SweepCell{Workload: "sobel", Config: BestConfig()}

	cold := storeSuite(t, dir)
	want, executed, err := cold.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("cold cell not executed")
	}
	if err := cold.Store.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the blob mid-payload, as a crash during a non-atomic
	// write would have.
	cfg := BestConfig()
	cfg.Scale = 1
	blob := filepath.Join(dir, CellStoreKey("sobel", cfg).String()+".json")
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blob, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	repair := storeSuite(t, dir)
	got, executed, err := repair.RunCell(cell)
	if err != nil {
		t.Fatalf("corrupt store entry surfaced as an error: %v", err)
	}
	if !executed {
		t.Fatal("corrupt entry served without recompute")
	}
	if got.Cycles != want.Cycles || got.Quality != want.Quality || got.EnergyPJ != want.EnergyPJ {
		t.Fatalf("recomputed result differs: %+v vs %+v", got, want)
	}
	if st := repair.Store.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("store stats after corruption = %+v", st)
	}

	// The recompute repaired the blob: a third suite hits cleanly.
	third := storeSuite(t, dir)
	res, executed, err := third.RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if executed {
		t.Fatal("repaired entry not served from store")
	}
	if res.Cycles != want.Cycles {
		t.Fatalf("repaired result differs: %d cycles, want %d", res.Cycles, want.Cycles)
	}
}

// TestStoreResultRoundTripExact checks the JSON round trip preserves
// every field the figures format, including float64s bit-for-bit.
func TestStoreResultRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	w, err := workloads.ByName("sobel")
	if err != nil {
		t.Fatal(err)
	}
	cfg := BestConfig()
	cfg.CollectElemErrors = true

	cold := storeSuite(t, dir)
	want, err := cold.Under(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := storeSuite(t, dir)
	got, err := warm.Under(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality != want.Quality || got.MeanError != want.MeanError ||
		got.HitRate != want.HitRate || got.EnergyPJ != want.EnergyPJ ||
		got.Cycles != want.Cycles || got.Insns != want.Insns {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, want)
	}
	if len(got.ElemErrors) != len(want.ElemErrors) {
		t.Fatalf("ElemErrors length %d, want %d", len(got.ElemErrors), len(want.ElemErrors))
	}
	for i := range got.ElemErrors {
		if got.ElemErrors[i] != want.ElemErrors[i] {
			t.Fatalf("ElemErrors[%d] = %v, want %v", i, got.ElemErrors[i], want.ElemErrors[i])
		}
	}
	if got.Energy != want.Energy || got.Monitor != want.Monitor {
		t.Fatal("energy breakdown or monitor stats drifted through the store")
	}
}
