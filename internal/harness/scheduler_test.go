package harness

import (
	"strings"
	"sync"
	"testing"

	"axmemo/internal/workloads"
)

// TestSweepCellsDedup checks that figures sharing a sweep share cells:
// Fig7a/7b/8/9/10a all read the same baseline + StandardConfigs grid, so
// requesting all five must enumerate it exactly once.
func TestSweepCellsDedup(t *testing.T) {
	one, err := SweepCells("Fig7a")
	if err != nil {
		t.Fatal(err)
	}
	want := len(workloads.All()) * (1 + len(StandardConfigs()))
	if len(one) != want {
		t.Fatalf("Fig7a cells = %d, want %d", len(one), want)
	}
	five, err := SweepCells("Fig7a", "Fig7b", "Fig8", "Fig9", "Fig10a")
	if err != nil {
		t.Fatal(err)
	}
	if len(five) != want {
		t.Fatalf("five-figure sweep = %d cells, want %d (fully deduplicated)", len(five), want)
	}
	// ATM shares its BestConfig column and baselines with the standard
	// grid: only the ATM-mode cells are new.
	withATM, err := SweepCells("Fig7a", "ATM")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(withATM), want+len(workloads.All()); got != want {
		t.Fatalf("Fig7a+ATM sweep = %d cells, want %d", got, want)
	}
	seen := make(map[cellKey]bool)
	for _, c := range withATM {
		if seen[c.key()] {
			t.Fatalf("duplicate cell %+v", c.key())
		}
		seen[c.key()] = true
	}
}

// TestSweepCellsCoverEveryFigure checks the enumeration knows every
// scheduler figure and rejects unknown ones.
func TestSweepCellsCoverEveryFigure(t *testing.T) {
	for _, id := range FigureIDs() {
		cells, err := SweepCells(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(cells) == 0 {
			t.Fatalf("%s: no cells enumerated", id)
		}
	}
	if _, err := SweepCells("Fig99"); err == nil {
		t.Fatal("unknown figure did not error")
	}
	if _, err := (&Suite{}).Figure("Fig99"); err == nil {
		t.Fatal("unknown figure did not error in Figure")
	}
}

// TestCellOnceSemantics races many goroutines at one cache cell and
// checks they all observe the identical *Result — i.e. the simulation
// ran exactly once.
func TestCellOnceSemantics(t *testing.T) {
	s := NewSuite(1)
	cfg := BestConfig()
	const n = 8
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := workloads.ByName("sobel")
			if err != nil {
				t.Error(err)
				return
			}
			r, err := s.Under(w, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different *Result: cell ran more than once", i)
		}
	}
	if got := s.CachedCells(); got != 1 {
		t.Fatalf("CachedCells = %d, want 1", got)
	}
}

// TestParallelSweepMatchesSerial is the scheduler's determinism
// contract: a worker-pool sweep must render byte-identical figures to a
// serial one.  Every Run carries all of its state (locally seeded RNGs,
// fault plans, memo units), so execution order cannot leak into results.
func TestParallelSweepMatchesSerial(t *testing.T) {
	figs := []string{"Fig7a", "Fig7b", "Fig8", "Fig10b", "ATM"}

	render := func(s *Suite) string {
		var sb strings.Builder
		out, err := s.GenerateAll(figs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range out {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	serial := NewSuite(1)
	serial.Parallel = 1
	want := render(serial)

	par := NewSuite(1)
	par.Parallel = 4
	got := render(par)

	if got != want {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if serial.CachedCells() != par.CachedCells() {
		t.Fatalf("cached cells differ: serial %d, parallel %d",
			serial.CachedCells(), par.CachedCells())
	}
}

// TestGenerateMatchesDirectFigure checks that the prewarmed path renders
// the same bytes as calling the figure generator cold.
func TestGenerateMatchesDirectFigure(t *testing.T) {
	cold := NewSuite(1)
	direct, err := cold.Fig10b()
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSuite(1)
	warm.Parallel = 2
	gen, err := warm.Generate("Fig10b")
	if err != nil {
		t.Fatal(err)
	}
	if gen.String() != direct.String() {
		t.Fatalf("Generate(Fig10b) differs from direct Fig10b:\n%s\nvs\n%s", gen.String(), direct.String())
	}
}
