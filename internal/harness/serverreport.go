package harness

import (
	"encoding/json"
	"fmt"
)

// ServerBenchSchema versions BENCH_server.json; bump it whenever a
// field is renamed, removed, or changes meaning.  Schema history:
//
//	1  initial report: open-loop capacity evidence (per-route latency
//	   quantiles, offered vs. achieved RPS per ramp step, the detected
//	   saturation knee, shed/timeout rates, store hit ratio)
const ServerBenchSchema = 1

// ServerRouteStats is one route's client-side view of a capacity run:
// latency quantiles over every completed request plus the shed (429)
// and timeout (504) rates.
type ServerRouteStats struct {
	Route    string  `json:"route"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	// Rate429 and Rate504 are fractions of all issued requests for the
	// route (0..1).
	Rate429 float64 `json:"rate_429"`
	Rate504 float64 `json:"rate_504"`
	Errors  uint64  `json:"errors"`
}

// ServerBenchStep is one step of the RPS ramp: the arrival rate the
// generator offered (open-loop, independent of responses) against what
// the server actually completed.
type ServerBenchStep struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// RejectRate is the fraction of the step's requests answered 429 or
	// 504 — the server shedding or timing out under the offered load.
	RejectRate float64 `json:"reject_rate"`
}

// ServerBenchReport is the machine-readable summary cmd/axload writes
// (BENCH_server.json): the serving layer's capacity evidence — what
// RPS the daemon sustains before its latency and shed rates blow up,
// measured open-loop so queueing delay cannot throttle the offered
// load and flatter the server.  Consumers should decode through
// DecodeServerBenchReport, which accepts every schema up to the
// current one.
type ServerBenchReport struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`
	Target    string `json:"target"`
	Mix       string `json:"mix"`
	Seed      int64  `json:"seed"`
	// DurationSec and WarmupSec describe the measured window (warmup
	// requests are issued but excluded from every statistic).
	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec"`

	Steps []ServerBenchStep `json:"steps"`
	// SaturationRPS is the detected knee: the highest offered rate the
	// server still served at >= 95% achievement with < 5% rejects; 0
	// when even the first step saturated.
	SaturationRPS float64 `json:"saturation_rps"`
	// Saturated reports whether the run actually drove the server past
	// its knee (false means SaturationRPS is only a lower bound).
	Saturated bool `json:"saturated"`

	Routes []ServerRouteStats `json:"routes"`
	// DroppedArrivals counts open-loop arrivals skipped because the
	// in-flight cap was reached — nonzero means the client, not the
	// server, was the bottleneck and the run under-offered.
	DroppedArrivals uint64 `json:"dropped_arrivals"`
	// StoreHitRatio is hits/(hits+misses) scraped from the daemon's
	// /metrics after the run; -1 when no store was attached.
	StoreHitRatio float64 `json:"store_hit_ratio"`
}

// Encode renders the report as indented JSON with a trailing newline,
// stamping the current schema version.
func (r ServerBenchReport) Encode() ([]byte, error) {
	r.Schema = ServerBenchSchema
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// DecodeServerBenchReport parses a BENCH_server.json of any supported
// schema; files from a future schema are rejected rather than
// silently misread.
func DecodeServerBenchReport(data []byte) (ServerBenchReport, error) {
	var r ServerBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return ServerBenchReport{}, fmt.Errorf("harness: decoding server bench report: %w", err)
	}
	if r.Schema < 1 || r.Schema > ServerBenchSchema {
		return ServerBenchReport{}, fmt.Errorf("harness: server bench report schema %d unsupported (have 1..%d)",
			r.Schema, ServerBenchSchema)
	}
	return r, nil
}
