package harness

import (
	"encoding/json"
	"fmt"
)

// ServerBenchSchema versions BENCH_server.json; bump it whenever a
// field is renamed, removed, or changes meaning.  Schema history:
//
//	1  initial report: open-loop capacity evidence (per-route latency
//	   quantiles, offered vs. achieved RPS per ramp step, the detected
//	   saturation knee, shed/timeout rates, store hit ratio)
//	2  adds gomaxprocs (the client's parallelism envelope),
//	   manager_enabled and the per-tenant latency/quality breakdown
//	   (tenants[]) for manager-driven multi-tenant runs; schema-1 files
//	   decode with those fields zero/absent
const ServerBenchSchema = 2

// ServerRouteStats is one route's client-side view of a capacity run:
// latency quantiles over every completed request plus the shed (429)
// and timeout (504) rates.
type ServerRouteStats struct {
	Route    string  `json:"route"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	// Rate429 and Rate504 are fractions of all issued requests for the
	// route (0..1).
	Rate429 float64 `json:"rate_429"`
	Rate504 float64 `json:"rate_504"`
	Errors  uint64  `json:"errors"`
}

// ServerTenantStats is one tenant's slice of a managed capacity run:
// the client-side latency of its requests plus the manager's quality
// view (budget, last observed mean error and speedup estimate) scraped
// from the daemon's /metrics after the run.
type ServerTenantStats struct {
	Tenant   string  `json:"tenant"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// ErrorBudget, MeanError and SpeedupEst mirror the daemon's
	// tenant_error_budget, tenant_mean_error and tenant_speedup_est
	// gauges; zero when the scrape failed or the family is absent.
	ErrorBudget float64 `json:"error_budget"`
	MeanError   float64 `json:"mean_error"`
	SpeedupEst  float64 `json:"speedup_est"`
}

// ServerBenchStep is one step of the RPS ramp: the arrival rate the
// generator offered (open-loop, independent of responses) against what
// the server actually completed.
type ServerBenchStep struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// RejectRate is the fraction of the step's requests answered 429 or
	// 504 — the server shedding or timing out under the offered load.
	RejectRate float64 `json:"reject_rate"`
}

// ServerBenchReport is the machine-readable summary cmd/axload writes
// (BENCH_server.json): the serving layer's capacity evidence — what
// RPS the daemon sustains before its latency and shed rates blow up,
// measured open-loop so queueing delay cannot throttle the offered
// load and flatter the server.  Consumers should decode through
// DecodeServerBenchReport, which accepts every schema up to the
// current one.
type ServerBenchReport struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`
	Target    string `json:"target"`
	Mix       string `json:"mix"`
	Seed      int64  `json:"seed"`
	// DurationSec and WarmupSec describe the measured window (warmup
	// requests are issued but excluded from every statistic).
	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec"`

	Steps []ServerBenchStep `json:"steps"`
	// SaturationRPS is the detected knee: the highest offered rate the
	// server still served at >= 95% achievement with < 5% rejects; 0
	// when even the first step saturated.
	SaturationRPS float64 `json:"saturation_rps"`
	// Saturated reports whether the run actually drove the server past
	// its knee (false means SaturationRPS is only a lower bound).
	Saturated bool `json:"saturated"`

	Routes []ServerRouteStats `json:"routes"`
	// DroppedArrivals counts open-loop arrivals skipped because the
	// in-flight cap was reached — nonzero means the client, not the
	// server, was the bottleneck and the run under-offered.
	DroppedArrivals uint64 `json:"dropped_arrivals"`
	// StoreHitRatio is hits/(hits+misses) scraped from the daemon's
	// /metrics after the run; -1 when no store was attached.
	StoreHitRatio float64 `json:"store_hit_ratio"`

	// GoMaxProcs records the generator's GOMAXPROCS (schema 2): the
	// client-side parallelism envelope the latencies were measured
	// under.
	GoMaxProcs int `json:"gomaxprocs"`
	// ManagerEnabled reports whether the run exercised the daemon's
	// approximation manager (tenant-routed requests; schema 2).
	ManagerEnabled bool `json:"manager_enabled"`
	// Tenants is the per-tenant breakdown of a managed run (schema 2);
	// absent on unmanaged runs.
	Tenants []ServerTenantStats `json:"tenants,omitempty"`
}

// Encode renders the report as indented JSON with a trailing newline,
// stamping the current schema version.
func (r ServerBenchReport) Encode() ([]byte, error) {
	r.Schema = ServerBenchSchema
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// DecodeServerBenchReport parses a BENCH_server.json of any supported
// schema; files from a future schema are rejected rather than
// silently misread.
func DecodeServerBenchReport(data []byte) (ServerBenchReport, error) {
	var r ServerBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return ServerBenchReport{}, fmt.Errorf("harness: decoding server bench report: %w", err)
	}
	if r.Schema < 1 || r.Schema > ServerBenchSchema {
		return ServerBenchReport{}, fmt.Errorf("harness: server bench report schema %d unsupported (have 1..%d)",
			r.Schema, ServerBenchSchema)
	}
	return r, nil
}
