package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"axmemo/internal/obs"
	"axmemo/internal/workloads"
)

// These tests extend the cpu package's differential contract to the
// whole experiment pipeline: a harness run — compiler transformation,
// memo unit, quality scoring, energy model — must produce an identical
// Result and an identical deterministic observability snapshot on the
// bytecode engine and its tree oracle.

// TestRunEngineParity runs full workloads under representative
// configurations on both engines and requires Result equality field for
// field, plus byte-identical deterministic metrics snapshots.
func TestRunEngineParity(t *testing.T) {
	configs := []Config{
		Baseline(),
		BestConfig(),
		{Name: "Software LUT", Mode: ModeSoftLUT, Scale: 1},
		{Name: "ATM", Mode: ModeATM, Scale: 1},
	}
	for _, wname := range []string{"sobel", "jmeint"} {
		w, err := workloads.ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range configs {
			run := func(engine string) (*Result, []byte) {
				cfg := base
				cfg.Scale = 1
				cfg.Engine = engine
				sink := obs.NewSink()
				cfg.Obs = sink
				cfg.ObsPID = 1
				res, err := Run(w, cfg)
				if err != nil {
					t.Fatalf("%s/%s engine=%s: %v", wname, cfg.Name, engine, err)
				}
				return res, sink.Reg().SnapshotJSON(obs.Deterministic)
			}
			bcRes, bcSnap := run("bytecode")
			trRes, trSnap := run("tree")
			if !reflect.DeepEqual(bcRes, trRes) {
				t.Errorf("%s/%s: result divergence:\n  bytecode: %+v\n  tree:     %+v",
					wname, base.Name, bcRes, trRes)
			}
			if !bytes.Equal(bcSnap, trSnap) {
				t.Errorf("%s/%s: deterministic obs snapshot differs between engines", wname, base.Name)
			}
		}
	}
}

// TestRunEngineUnknown pins the error path for a bad engine selector.
func TestRunEngineUnknown(t *testing.T) {
	w, err := workloads.ByName("sobel")
	if err != nil {
		t.Fatal(err)
	}
	cfg := BestConfig()
	cfg.Engine = "llvm"
	if _, err := Run(w, cfg); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want unknown-engine error, got %v", err)
	}
}

// TestSuiteEngineFigureParity renders the figure suite's standard sweep
// on the tree engine and compares it byte for byte against the golden
// files — which the default (bytecode) suite is also held to in
// golden_test.go.  Together the two pin the acceptance claim: the full
// figure output is byte-identical between engines.
func TestSuiteEngineFigureParity(t *testing.T) {
	s := NewSuite(1)
	s.Engine = "tree"
	for _, tc := range []struct {
		file string
		gen  func() (*Figure, error)
	}{
		{"fig7a.txt", s.Fig7a},
		{"fig9.txt", s.Fig9},
	} {
		fig, err := tc.gen()
		if err != nil {
			t.Fatal(err)
		}
		golden(t, tc.file, []byte(fig.String()))
	}
}
