package harness

import (
	"fmt"

	"axmemo/internal/workloads"
)

// The benchmark subsets and configurations below are shared between the
// ablation figure generators and the sweep scheduler's cell enumeration
// (scheduler.go), so the two cannot drift apart.
var (
	ablCRCWidthNames     = []string{"blackscholes", "sobel", "srad"}
	ablCRCWidths         = []uint{16, 32, 64}
	ablAdaptiveNames     = []string{"inversek2j", "sobel", "srad"}
	energyBreakdownNames = []string{"blackscholes", "sobel", "jmeint"}
	ablCRCRateNames      = []string{"sobel", "jmeint"}
)

// crcWidthConfig is BestConfig at a given CRC tag width, with true-hash
// collision tracking on.
func crcWidthConfig(width uint) Config {
	cfg := BestConfig()
	cfg.Name = fmt.Sprintf("CRC%d", width)
	cfg.CRCWidth = width
	cfg.TrackCollisions = true
	return cfg
}

// adaptiveConfig starts from zero truncation and lets the §3.1 runtime
// controller pick the truncation profile.
func adaptiveConfig(w *workloads.Workload) Config {
	cfg := BestConfig()
	cfg.Name = "adaptive"
	cfg.Trunc = make([]uint8, len(w.TruncBits))
	cfg.Adaptive = true
	return cfg
}

// noApproxConfig pins truncation to zero: exact memoization only.
func noApproxConfig(w *workloads.Workload) Config {
	cfg := BestConfig()
	cfg.Name = "no-approx"
	cfg.Trunc = make([]uint8, len(w.TruncBits))
	return cfg
}

// serialCRCConfig models the Table 4 byte-serial hash unit.
func serialCRCConfig() Config {
	cfg := BestConfig()
	cfg.Name = "serial-crc"
	cfg.CRCBytesPerCycle = 1
	return cfg
}

// AblationCRCWidth sweeps the CRC tag width on the widest-input
// benchmarks: the §6 design claim is that 32 bits is "generally large
// enough to avoid collision", while 16 bits visibly is not.
func (s *Suite) AblationCRCWidth() (*Figure, error) {
	fig := &Figure{
		ID:     "ABL-CRC",
		Title:  "ablation: CRC tag width vs true hash collisions",
		Header: []string{"benchmark", "width", "collisions", "hit rate", "quality loss"},
	}
	for _, name := range ablCRCWidthNames {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, width := range ablCRCWidths {
			r, err := s.Under(w, crcWidthConfig(width))
			if err != nil {
				return nil, err
			}
			fig.Rows = append(fig.Rows, []string{
				name, fmt.Sprintf("%d", width),
				fmt.Sprintf("%d", r.Collisions),
				pct(r.HitRate),
				fmt.Sprintf("%.5f%%", 100*r.Quality),
			})
		}
	}
	fig.Notes = append(fig.Notes, "paper §6: \"32-bit CRC is generally large enough to avoid collision\"")
	return fig, nil
}

// AblationAdaptive contrasts the compile-time truncation profile against
// the §3.1 runtime controller starting from zero truncation.
func (s *Suite) AblationAdaptive() (*Figure, error) {
	fig := &Figure{
		ID:     "ABL-ADAPT",
		Title:  "ablation: compile-time vs runtime truncation selection",
		Header: []string{"benchmark", "static hit", "adaptive hit", "no-approx hit", "static quality", "adaptive quality"},
	}
	for _, name := range ablAdaptiveNames {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		static, err := s.Under(w, BestConfig())
		if err != nil {
			return nil, err
		}
		adaptive, err := s.Under(w, adaptiveConfig(w))
		if err != nil {
			return nil, err
		}
		noApprox, err := s.Under(w, noApproxConfig(w))
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, []string{
			name,
			pct(static.HitRate), pct(adaptive.HitRate), pct(noApprox.HitRate),
			fmt.Sprintf("%.4f%%", 100*static.Quality),
			fmt.Sprintf("%.4f%%", 100*adaptive.Quality),
		})
	}
	fig.Notes = append(fig.Notes,
		"the runtime controller needs a warm-up; its hit rate approaches the profiled level as inputs grow (-scale)")
	return fig, nil
}

// EnergyBreakdown shows where the energy goes — the §1 premise that the
// von Neumann overhead (fetch/decode/issue/commit) dominates and that
// memoization removes it wholesale, paying back a tiny LUT energy.
func (s *Suite) EnergyBreakdown() (*Figure, error) {
	fig := &Figure{
		ID:    "ENERGY",
		Title: "energy breakdown (pJ, millions): where memoization saves",
		Header: []string{"benchmark", "config", "front end", "execute",
			"caches", "DRAM", "memo unit", "static", "total"},
	}
	mpj := func(v float64) string { return fmt.Sprintf("%.2f", v/1e6) }
	for _, name := range energyBreakdownNames {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		base, err := s.Baseline(w)
		if err != nil {
			return nil, err
		}
		hw, err := s.Under(w, BestConfig())
		if err != nil {
			return nil, err
		}
		for _, r := range []*Result{base, hw} {
			fig.Rows = append(fig.Rows, []string{
				name, r.Config,
				mpj(r.Energy.FrontEndPJ), mpj(r.Energy.ExecPJ),
				mpj(r.Energy.CachePJ), mpj(r.Energy.DRAMPJ),
				mpj(r.Energy.MemoPJ), mpj(r.Energy.StaticPJ),
				mpj(r.Energy.TotalPJ()),
			})
		}
	}
	fig.Notes = append(fig.Notes,
		"§1: even for a fused multiply-add, execution can be ~3% of instruction energy — removing whole instructions removes the other ~97% too")
	return fig, nil
}

// AblationCRCRate compares the Table 4 byte-serial hash unit against the
// evaluated 4x-unrolled pipelined one.
func (s *Suite) AblationCRCRate() (*Figure, error) {
	fig := &Figure{
		ID:     "ABL-RATE",
		Title:  "ablation: CRC absorption rate (36-byte-input benchmarks stall on the input queue)",
		Header: []string{"benchmark", "1 B/cycle", "4 B/cycle", "speedup from unrolling"},
	}
	for _, name := range ablCRCRateNames {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		sr, err := s.Under(w, serialCRCConfig())
		if err != nil {
			return nil, err
		}
		fast := BestConfig()
		fr, err := s.Under(w, fast)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, []string{
			name,
			fmt.Sprintf("%d cycles", sr.Cycles),
			fmt.Sprintf("%d cycles", fr.Cycles),
			f2x(float64(sr.Cycles) / float64(fr.Cycles)),
		})
	}
	fig.Notes = append(fig.Notes,
		"§6.1: the evaluated CRC32 unit is unrolled four times and pipelined to absorb a 4-byte word per cycle")
	return fig, nil
}
