package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"axmemo/internal/obs"
	"axmemo/internal/workloads"
)

// This file is the concurrent sweep scheduler: every figure of the
// evaluation is a workload × configuration sweep whose cells are
// independent, deterministic simulations.  The scheduler enumerates the
// cells a set of figures needs up front, deduplicates the shared ones
// (baselines and the standard LUT sweep appear in Fig7a/7b/8/9/10a), and
// executes them on a bounded worker pool.  The Suite cache's per-cell
// once-semantics guarantee each simulation runs exactly once even when
// workers and figure generators race, and — because every run carries
// all of its state (RNG seeds, fault plans, memoization units) — the
// rendered figures are byte-identical to a serial sweep (asserted by
// TestParallelSweepMatchesSerial).

// SweepCell names one simulation of the evaluation sweep.
type SweepCell struct {
	// Workload is the benchmark name (resolved per worker so that
	// concurrent cells never share one Workload instance).
	Workload string
	// Config is the harness configuration; ignored when Baseline.
	Config Config
	// Baseline marks the unmemoized run.
	Baseline bool
}

// key returns the cell's suite-cache coordinates.
func (c SweepCell) key() cellKey {
	name := c.Config.Name
	if c.Baseline {
		name = Baseline().Name
	}
	return cellKey{workload: c.Workload, config: name}
}

// FigureIDs lists every sweep-driven artifact the scheduler understands,
// in report order.
func FigureIDs() []string {
	return []string{
		"Fig7a", "Fig7b", "Fig8", "Fig9", "Fig10a", "Fig10b", "Fig11",
		"ATM", "SENS", "ABL-CRC", "ABL-ADAPT", "ABL-RATE", "ENERGY",
	}
}

// SweepCells enumerates the deduplicated simulation cells needed by the
// given figures (all of FigureIDs when empty), in deterministic order.
func SweepCells(figIDs ...string) ([]SweepCell, error) {
	if len(figIDs) == 0 {
		figIDs = FigureIDs()
	}
	seen := make(map[cellKey]bool)
	var cells []SweepCell
	for _, id := range figIDs {
		fc, err := cellsForFigure(id)
		if err != nil {
			return nil, err
		}
		for _, c := range fc {
			if k := c.key(); !seen[k] {
				seen[k] = true
				cells = append(cells, c)
			}
		}
	}
	return cells, nil
}

// cellsForFigure mirrors the corresponding figure generator's sweep.
// Each generator builds its configurations through the same shared
// constructors (StandardConfigs, fig10bConfig, …), so the enumeration
// cannot drift from what rendering will request.
func cellsForFigure(id string) ([]SweepCell, error) {
	all := workloads.All()
	var cells []SweepCell
	base := func(w *workloads.Workload) {
		cells = append(cells, SweepCell{Workload: w.Name, Baseline: true})
	}
	under := func(w *workloads.Workload, cfgs ...Config) {
		for _, cfg := range cfgs {
			cells = append(cells, SweepCell{Workload: w.Name, Config: cfg})
		}
	}
	switch id {
	case "Fig7a", "Fig7b", "Fig8", "Fig9", "Fig10a":
		for _, w := range all {
			base(w)
			under(w, StandardConfigs()...)
		}
	case "Fig10b":
		for _, w := range all {
			if w.Misclass {
				continue
			}
			under(w, fig10bConfig())
		}
	case "Fig11":
		for _, w := range all {
			base(w)
			under(w, BestConfig(), fig11NoApproxConfig(w))
		}
	case "ATM":
		for _, w := range all {
			base(w)
			under(w, atmConfig(), BestConfig())
		}
	case "SENS":
		big, small := l2SensitivityConfigs()
		for _, w := range all {
			under(w, big, small)
		}
	case "ABL-CRC":
		for _, name := range ablCRCWidthNames {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			for _, width := range ablCRCWidths {
				under(w, crcWidthConfig(width))
			}
		}
	case "ABL-ADAPT":
		for _, name := range ablAdaptiveNames {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			under(w, BestConfig(), adaptiveConfig(w), noApproxConfig(w))
		}
	case "ABL-RATE":
		for _, name := range ablCRCRateNames {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			under(w, serialCRCConfig(), BestConfig())
		}
	case "ENERGY":
		for _, name := range energyBreakdownNames {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			base(w)
			under(w, BestConfig())
		}
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have %v)", id, FigureIDs())
	}
	return cells, nil
}

// workers resolves the effective pool size: explicit > 0 wins, then the
// suite's Parallel setting, then one worker per available CPU.
func (s *Suite) workers(n int) int {
	if n <= 0 {
		n = s.Parallel
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// Prewarm executes every cell the named figures need (all figures when
// none are named) on a pool of n workers (0 = Suite.Parallel, then
// GOMAXPROCS) and fills the suite cache.  Rendering the figures
// afterwards only reads cached results.  Cells are independent
// simulations, so all of them are attempted even if one fails; the first
// error is returned.
func (s *Suite) Prewarm(n int, figIDs ...string) error {
	cells, err := SweepCells(figIDs...)
	if err != nil {
		return err
	}
	// Pre-assign every cell's trace process lane in enumeration order,
	// before any worker races for them: parallel and serial sweeps then
	// emit identical timelines.
	if s.Obs != nil {
		for _, c := range cells {
			s.pidFor(c.key())
		}
	}
	tele := s.newSweepTelemetry(len(cells))
	n = s.workers(n)
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		var firstErr error
		for _, c := range cells {
			if err := tele.run(s, c); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	jobs := make(chan SweepCell)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if err := tele.run(s, c); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// sweepTelemetry is the scheduler's own instrumentation: scheduled-cell
// counts are deterministic, while wall time and queue depth depend on
// host load and pool size and therefore live in Volatile families that
// the deterministic snapshot excludes.
type sweepTelemetry struct {
	wall  *obs.Histogram
	depth *obs.Gauge
}

func (s *Suite) newSweepTelemetry(cells int) *sweepTelemetry {
	t := &sweepTelemetry{}
	if reg := s.Obs.Reg(); reg != nil {
		reg.NewCounter("harness_sweep_cells_total",
			obs.Opts{Help: "sweep cells scheduled by Prewarm"}).Add(uint64(cells))
		t.wall = reg.NewHistogram("harness_cell_wall_seconds",
			obs.Opts{Help: "per-cell wall time", Volatile: true,
				Buckets: []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60}})
		t.depth = reg.NewGauge("harness_queue_depth",
			obs.Opts{Help: "sweep cells not yet completed", Volatile: true})
		t.depth.Set(float64(cells))
	}
	return t
}

// run executes one cell and records the scheduler telemetry around it
// (all metric methods are nil-safe, so a sink-less suite pays nothing).
func (t *sweepTelemetry) run(s *Suite, c SweepCell) error {
	start := time.Now()
	err := s.runSweepCell(c)
	t.wall.Observe(time.Since(start).Seconds())
	t.depth.Add(-1)
	return err
}

// runSweepCell executes one cell through the suite cache.  RunCell
// resolves the workload fresh rather than sharing it across cells: a
// Workload's closures may keep per-instance state, so two concurrent
// simulations must never run off the same instance.
func (s *Suite) runSweepCell(c SweepCell) error {
	_, _, err := s.RunCell(c)
	return err
}

// Figure renders one artifact by scheduler ID.
func (s *Suite) Figure(id string) (*Figure, error) {
	switch id {
	case "Fig7a":
		return s.Fig7a()
	case "Fig7b":
		return s.Fig7b()
	case "Fig8":
		return s.Fig8()
	case "Fig9":
		return s.Fig9()
	case "Fig10a":
		return s.Fig10a()
	case "Fig10b":
		return s.Fig10b()
	case "Fig11":
		return s.Fig11()
	case "ATM":
		return s.ATMComparison()
	case "SENS":
		return s.L2Sensitivity()
	case "ABL-CRC":
		return s.AblationCRCWidth()
	case "ABL-ADAPT":
		return s.AblationAdaptive()
	case "ABL-RATE":
		return s.AblationCRCRate()
	case "ENERGY":
		return s.EnergyBreakdown()
	}
	return nil, fmt.Errorf("harness: unknown figure %q (have %v)", id, FigureIDs())
}

// Generate prewarms one figure's sweep on the parallel pool, then
// renders it from the warm cache.
func (s *Suite) Generate(id string) (*Figure, error) {
	if err := s.Prewarm(0, id); err != nil {
		return nil, err
	}
	return s.Figure(id)
}

// GenerateAll prewarms every named figure's sweep at once — maximizing
// cross-figure cell sharing — then renders them in order (all of
// FigureIDs when none are named).
func (s *Suite) GenerateAll(figIDs ...string) ([]*Figure, error) {
	if len(figIDs) == 0 {
		figIDs = FigureIDs()
	}
	if err := s.Prewarm(0, figIDs...); err != nil {
		return nil, err
	}
	figs := make([]*Figure, 0, len(figIDs))
	for _, id := range figIDs {
		fig, err := s.Figure(id)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
