package harness

import (
	"testing"

	"axmemo/internal/workloads"
)

func TestFaultSweepDegradesMonotonically(t *testing.T) {
	w, err := workloads.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := FaultSweep(w, FaultSweepConfig{
		Rates: []float64{0, 1e-4, 1e-2},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Result.Faults.Total() != 0 {
		t.Errorf("zero-rate point injected %d faults", pts[0].Result.Faults.Total())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Result.Faults.LUTBitFlips <= pts[i-1].Result.Faults.LUTBitFlips {
			t.Errorf("flip count not increasing: %d at %g vs %d at %g",
				pts[i].Result.Faults.LUTBitFlips, pts[i].Rate,
				pts[i-1].Result.Faults.LUTBitFlips, pts[i-1].Rate)
		}
		if pts[i].Result.Quality < pts[i-1].Result.Quality {
			t.Errorf("quality improved under more faults: %.4g at %g vs %.4g at %g",
				pts[i].Result.Quality, pts[i].Rate,
				pts[i-1].Result.Quality, pts[i-1].Rate)
		}
	}
	if pts[2].Result.Quality <= pts[0].Result.Quality {
		t.Errorf("1%% bit flips did not degrade quality: %.4g vs %.4g",
			pts[2].Result.Quality, pts[0].Result.Quality)
	}
}

func TestFaultSweepGuardBoundsError(t *testing.T) {
	w, err := workloads.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.05
	rate := 1e-2
	pts, err := FaultSweep(w, FaultSweepConfig{
		Rates:       []float64{rate},
		Seed:        1,
		GuardBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	un, gd := pts[0].Result, pts[0].Guarded
	if gd == nil {
		t.Fatal("guarded run missing")
	}
	if gd.Monitor.GuardDisables == 0 {
		t.Fatalf("guard never tripped at flip rate %g (unguarded quality %.4g)", rate, un.Quality)
	}
	if gd.MeanError >= un.MeanError {
		t.Errorf("guard did not improve quality: %.4g guarded vs %.4g unguarded", gd.MeanError, un.MeanError)
	}
	if gd.MeanError > budget {
		t.Errorf("guarded mean error %.4g exceeds the %.2f budget", gd.MeanError, budget)
	}
	if gd.HitRate >= un.HitRate {
		t.Errorf("guard should absorb the loss in hit rate: %.3f guarded vs %.3f unguarded",
			gd.HitRate, un.HitRate)
	}
}

func TestFaultSweepRejectsNonHardwareBase(t *testing.T) {
	w, err := workloads.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FaultSweep(w, FaultSweepConfig{Base: Baseline()}); err == nil {
		t.Error("baseline base config accepted")
	}
}
