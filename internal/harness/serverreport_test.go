package harness

import (
	"strings"
	"testing"
)

// TestServerBenchReportRoundTrip: Encode stamps the current schema and
// Decode returns the same report.
func TestServerBenchReportRoundTrip(t *testing.T) {
	in := ServerBenchReport{
		Target: "http://127.0.0.1:1", Mix: "hotkey", Seed: 7,
		DurationSec: 10, WarmupSec: 2,
		Steps:         []ServerBenchStep{{OfferedRPS: 100, AchievedRPS: 99, RejectRate: 0.01}},
		SaturationRPS: 100, Saturated: true,
		Routes: []ServerRouteStats{{Route: "simulate", Requests: 990,
			P50Ms: 1.5, P99Ms: 9.75, P999Ms: 20, Rate429: 0.005, Rate504: 0}},
		DroppedArrivals: 0, StoreHitRatio: 0.93,
		GoMaxProcs:     8,
		ManagerEnabled: true,
		Tenants: []ServerTenantStats{{Tenant: "gold", Requests: 500,
			P50Ms: 2, P99Ms: 11, ErrorBudget: 0.01, MeanError: 0.008, SpeedupEst: 1.3}},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeServerBenchReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != ServerBenchSchema {
		t.Fatalf("schema = %d, want %d", out.Schema, ServerBenchSchema)
	}
	out.Schema = 0
	in.Schema = 0
	if len(out.Steps) != 1 || out.Steps[0] != in.Steps[0] {
		t.Fatalf("steps mangled: %+v", out.Steps)
	}
	if len(out.Routes) != 1 || out.Routes[0] != in.Routes[0] {
		t.Fatalf("routes mangled: %+v", out.Routes)
	}
	if out.Mix != in.Mix || out.Seed != in.Seed || out.SaturationRPS != in.SaturationRPS ||
		out.Saturated != in.Saturated || out.StoreHitRatio != in.StoreHitRatio {
		t.Fatalf("round trip mangled: %+v vs %+v", out, in)
	}
	if out.GoMaxProcs != 8 || !out.ManagerEnabled ||
		len(out.Tenants) != 1 || out.Tenants[0] != in.Tenants[0] {
		t.Fatalf("schema-2 fields mangled: %+v", out)
	}
}

// TestServerBenchReportSchema1Upgrade: a schema-1 file (no gomaxprocs,
// manager or tenant fields) still decodes, with the schema-2 additions
// zero-valued.
func TestServerBenchReportSchema1Upgrade(t *testing.T) {
	v1 := `{
  "schema": 1,
  "mix": "hotkey",
  "seed": 7,
  "steps": [{"offered_rps": 100, "achieved_rps": 99, "reject_rate": 0.01}],
  "routes": [{"route": "simulate", "requests": 990, "p50_ms": 1.5}],
  "store_hit_ratio": 0.93
}`
	r, err := DecodeServerBenchReport([]byte(v1))
	if err != nil {
		t.Fatalf("schema-1 report rejected: %v", err)
	}
	if r.Schema != 1 || r.Mix != "hotkey" || len(r.Steps) != 1 || len(r.Routes) != 1 {
		t.Fatalf("schema-1 decode mangled: %+v", r)
	}
	if r.GoMaxProcs != 0 || r.ManagerEnabled || r.Tenants != nil {
		t.Fatalf("schema-2 fields not zero on schema-1 input: %+v", r)
	}
}

// TestServerBenchReportForwardRejection: a report from a future schema
// must be refused, not silently misread; garbage likewise.
func TestServerBenchReportForwardRejection(t *testing.T) {
	future := `{"schema": ` + "99" + `, "mix": "hotkey"}`
	if _, err := DecodeServerBenchReport([]byte(future)); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("future schema accepted (err=%v)", err)
	}
	if _, err := DecodeServerBenchReport([]byte(`{"schema": 0}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
	if _, err := DecodeServerBenchReport([]byte(`nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
