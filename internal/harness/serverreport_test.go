package harness

import (
	"strings"
	"testing"
)

// TestServerBenchReportRoundTrip: Encode stamps the current schema and
// Decode returns the same report.
func TestServerBenchReportRoundTrip(t *testing.T) {
	in := ServerBenchReport{
		Target: "http://127.0.0.1:1", Mix: "hotkey", Seed: 7,
		DurationSec: 10, WarmupSec: 2,
		Steps:         []ServerBenchStep{{OfferedRPS: 100, AchievedRPS: 99, RejectRate: 0.01}},
		SaturationRPS: 100, Saturated: true,
		Routes: []ServerRouteStats{{Route: "simulate", Requests: 990,
			P50Ms: 1.5, P99Ms: 9.75, P999Ms: 20, Rate429: 0.005, Rate504: 0}},
		DroppedArrivals: 0, StoreHitRatio: 0.93,
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeServerBenchReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != ServerBenchSchema {
		t.Fatalf("schema = %d, want %d", out.Schema, ServerBenchSchema)
	}
	out.Schema = 0
	in.Schema = 0
	if len(out.Steps) != 1 || out.Steps[0] != in.Steps[0] {
		t.Fatalf("steps mangled: %+v", out.Steps)
	}
	if len(out.Routes) != 1 || out.Routes[0] != in.Routes[0] {
		t.Fatalf("routes mangled: %+v", out.Routes)
	}
	if out.Mix != in.Mix || out.Seed != in.Seed || out.SaturationRPS != in.SaturationRPS ||
		out.Saturated != in.Saturated || out.StoreHitRatio != in.StoreHitRatio {
		t.Fatalf("round trip mangled: %+v vs %+v", out, in)
	}
}

// TestServerBenchReportForwardRejection: a report from a future schema
// must be refused, not silently misread; garbage likewise.
func TestServerBenchReportForwardRejection(t *testing.T) {
	future := `{"schema": ` + "99" + `, "mix": "hotkey"}`
	if _, err := DecodeServerBenchReport([]byte(future)); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("future schema accepted (err=%v)", err)
	}
	if _, err := DecodeServerBenchReport([]byte(`{"schema": 0}`)); err == nil {
		t.Fatal("schema 0 accepted")
	}
	if _, err := DecodeServerBenchReport([]byte(`nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
