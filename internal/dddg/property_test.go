package dddg

import (
	"math/rand"
	"testing"

	"axmemo/internal/ir"
	"axmemo/internal/trace"
)

// randomTrace synthesizes a random dependence structure directly (no
// simulator): each entry depends on a few earlier non-control entries,
// with occasional live-ins and control vertices sprinkled in.
func randomTrace(rng *rand.Rand, n int) []trace.Entry {
	ops := []ir.Op{ir.FAdd, ir.FMul, ir.Sqrt, ir.Add, ir.Load, ir.Exp}
	entries := make([]trace.Entry, n)
	for i := range entries {
		if rng.Intn(8) == 0 {
			entries[i] = trace.Entry{SID: int32(i % 50), Op: ir.Br, Control: true}
			continue
		}
		op := ops[rng.Intn(len(ops))]
		e := trace.Entry{SID: int32(i % 50), Op: op, Weight: int32(1 + rng.Intn(40))}
		nDeps := rng.Intn(3)
		for d := 0; d < nDeps && i > 0; d++ {
			cand := int32(rng.Intn(i))
			if !entries[cand].Control {
				e.Deps = append(e.Deps, cand)
			}
		}
		if rng.Intn(3) == 0 {
			e.LiveIns = append(e.LiveIns, trace.ParamKey(uint64(rng.Intn(4)), ir.Reg(rng.Intn(8))))
		}
		entries[i] = e
	}
	return entries
}

// Property: on arbitrary dependence structures, every candidate the
// search returns satisfies the paper's closure conditions, respects the
// configured bounds, and reports a CI_Ratio consistent with its members.
func TestSearchPropertiesOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cfg := SearchConfig{MinRatio: 2, MaxInputs: 6, MaxVertices: 64, MinVertices: 2}
	for trial := 0; trial < 25; trial++ {
		g := Build(randomTrace(rng, 400))
		for _, c := range g.Search(cfg) {
			inS := make(map[int32]bool, len(c.Vertices))
			var weight int64
			for _, v := range c.Vertices {
				inS[v] = true
				weight += int64(g.Weight[v])
			}
			// Closure: only the output vertex may feed consumers
			// outside S.
			for _, v := range c.Vertices {
				if v == c.Output {
					continue
				}
				for _, s := range g.Succ[v] {
					if !inS[s] {
						t.Fatalf("trial %d: vertex %d leaks to %d outside the subgraph", trial, v, s)
					}
				}
			}
			// The output must be a member.
			if !inS[c.Output] {
				t.Fatalf("trial %d: output %d not a member", trial, c.Output)
			}
			// Bounds.
			if len(c.Vertices) < cfg.MinVertices || len(c.Vertices) > cfg.MaxVertices {
				t.Fatalf("trial %d: size %d out of bounds", trial, len(c.Vertices))
			}
			if c.Inputs > cfg.MaxInputs || c.Inputs < 1 {
				t.Fatalf("trial %d: inputs %d out of bounds", trial, c.Inputs)
			}
			// Reported weight and ratio are self-consistent.
			if c.Weight != weight {
				t.Fatalf("trial %d: weight %d, members sum to %d", trial, c.Weight, weight)
			}
			if got := float64(weight) / float64(c.Inputs); got < cfg.MinRatio || absDiff(got, c.CIRatio) > 1e-9 {
				t.Fatalf("trial %d: CI ratio %v inconsistent (recomputed %v)", trial, c.CIRatio, got)
			}
			// Exact external-input recount: distinct outside
			// producers plus distinct live-in keys of members.
			ext := map[uint64]bool{}
			for _, v := range c.Vertices {
				for _, p := range g.Pred[v] {
					if !inS[p] {
						ext[uint64(uint32(p))] = true
					}
				}
				for _, k := range g.LiveIns[v] {
					ext[k] = true
				}
			}
			wantInputs := len(ext)
			if wantInputs == 0 {
				wantInputs = 1
			}
			if c.Inputs != wantInputs {
				t.Fatalf("trial %d: inputs %d, recount %d", trial, c.Inputs, wantInputs)
			}
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: Analyze's coverage is a valid fraction and its group counts
// are consistent with the dynamic candidate count.
func TestAnalyzePropertiesOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cfg := SearchConfig{MinRatio: 2, MaxInputs: 6, MaxVertices: 64, MinVertices: 2}
	for trial := 0; trial < 15; trial++ {
		g := Build(randomTrace(rng, 300))
		a := g.Analyze(cfg, 0.5)
		if a.Coverage < 0 || a.Coverage > 1 {
			t.Fatalf("coverage %v out of [0,1]", a.Coverage)
		}
		var groupCount int
		for _, grp := range a.UniqueGroups {
			groupCount += grp.Count
		}
		if groupCount > a.DynamicSubgraphs {
			t.Fatalf("groups cover %d candidates but only %d exist", groupCount, a.DynamicSubgraphs)
		}
		if a.DynamicSubgraphs > 0 && len(a.UniqueGroups) == 0 {
			t.Fatal("candidates exist but no unique groups survived filtering")
		}
	}
}
