package dddg

import "sort"

// UniqueGroup is a set of structurally equivalent candidates: subgraphs
// with identical static-instruction fingerprints, e.g. every iteration of
// a memoizable loop body (§5's filtering step).
type UniqueGroup struct {
	// SIDs is the shared structural fingerprint.
	SIDs []int32
	// Count is the number of dynamic candidates in the group.
	Count int
	// MeanRatio is the average CI_Ratio across the group.
	MeanRatio float64
	// MeanInputs is the average input count.
	MeanInputs float64
	// Weight is the total dynamic weight covered by the group.
	Weight int64
}

// Analysis is the Table 1 summary for one benchmark.
type Analysis struct {
	// DynamicSubgraphs is the total number of candidate subgraphs
	// found in the trace (Table 1 col. 1).
	DynamicSubgraphs int
	// UniqueGroups are the structurally distinct candidates after
	// filtering subsets and duplicates (col. 2 counts these).
	UniqueGroups []UniqueGroup
	// MeanCIRatio is the average CI_Ratio across filtered candidates
	// (col. 3).
	MeanCIRatio float64
	// Coverage is the fraction of total DDDG weight inside candidate
	// subgraphs (col. 4, "Memoization Coverage").
	Coverage float64
}

func sidKey(sids []int32) string {
	b := make([]byte, 0, len(sids)*4)
	for _, s := range sids {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// isSubset reports whether a ⊆ b for sorted id sets.
func isSubset(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// overlap returns |a∩b| / min(|a|,|b|) for sorted id sets.
func overlap(a, b []int32) float64 {
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	minLen := len(a)
	if len(b) < minLen {
		minLen = len(b)
	}
	if minLen == 0 {
		return 0
	}
	return float64(common) / float64(minLen)
}

// mergeSIDs unions two sorted id sets.
func mergeSIDs(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Analyze runs the full Fig. 5 step-③ pipeline over a graph: search,
// structural dedup, subset filtering, overlap merging, and the Table 1
// metrics.  mergeThreshold is the overlap fraction above which two unique
// groups are merged into a larger region (the paper merges "subgraphs
// with high overlap"); 0 disables merging.
func (g *Graph) Analyze(cfg SearchConfig, mergeThreshold float64) Analysis {
	cands := g.Search(cfg)
	a := Analysis{DynamicSubgraphs: len(cands)}
	if len(cands) == 0 {
		return a
	}

	// Group by structural fingerprint.
	groups := make(map[string]*UniqueGroup)
	var ratioSum float64
	for _, c := range cands {
		ratioSum += c.CIRatio
		k := sidKey(c.SIDs)
		grp, ok := groups[k]
		if !ok {
			grp = &UniqueGroup{SIDs: c.SIDs}
			groups[k] = grp
		}
		grp.Count++
		grp.MeanRatio += c.CIRatio
		grp.MeanInputs += float64(c.Inputs)
		grp.Weight += c.Weight
	}
	a.MeanCIRatio = ratioSum / float64(len(cands))

	uniq := make([]*UniqueGroup, 0, len(groups))
	for _, grp := range groups {
		grp.MeanRatio /= float64(grp.Count)
		grp.MeanInputs /= float64(grp.Count)
		uniq = append(uniq, grp)
	}
	// Deterministic order: largest weight first.
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].Weight != uniq[j].Weight {
			return uniq[i].Weight > uniq[j].Weight
		}
		return sidKey(uniq[i].SIDs) < sidKey(uniq[j].SIDs)
	})

	// Drop groups that are structural subsets of a larger group.
	kept := uniq[:0]
	for i, grp := range uniq {
		sub := false
		for j, other := range uniq {
			if i == j || len(grp.SIDs) > len(other.SIDs) {
				continue
			}
			if len(grp.SIDs) == len(other.SIDs) && i < j {
				continue // identical sets cannot happen (map key); order guard
			}
			if isSubset(grp.SIDs, other.SIDs) {
				sub = true
				break
			}
		}
		if !sub {
			kept = append(kept, grp)
		}
	}

	// Merge highly overlapping groups into larger regions.
	if mergeThreshold > 0 {
		merged := true
		for merged {
			merged = false
			for i := 0; i < len(kept) && !merged; i++ {
				for j := i + 1; j < len(kept); j++ {
					if overlap(kept[i].SIDs, kept[j].SIDs) >= mergeThreshold {
						kept[i].SIDs = mergeSIDs(kept[i].SIDs, kept[j].SIDs)
						kept[i].Count += kept[j].Count
						kept[i].Weight += kept[j].Weight
						kept[i].MeanRatio = (kept[i].MeanRatio + kept[j].MeanRatio) / 2
						kept[i].MeanInputs = (kept[i].MeanInputs + kept[j].MeanInputs) / 2
						kept = append(kept[:j], kept[j+1:]...)
						merged = true
						break
					}
				}
			}
		}
	}
	a.UniqueGroups = append([]UniqueGroup{}, deref(kept)...)

	// Coverage: weight of vertices inside any candidate over total
	// weight.  Count each dynamic vertex once.
	covered := make(map[int32]struct{})
	var coveredWeight int64
	for _, c := range cands {
		for _, v := range c.Vertices {
			if _, seen := covered[v]; !seen {
				covered[v] = struct{}{}
				coveredWeight += int64(g.Weight[v])
			}
		}
	}
	if g.TotalWeight > 0 {
		a.Coverage = float64(coveredWeight) / float64(g.TotalWeight)
	}
	return a
}

func deref(ps []*UniqueGroup) []UniqueGroup {
	out := make([]UniqueGroup, len(ps))
	for i, p := range ps {
		out[i] = *p
	}
	return out
}
