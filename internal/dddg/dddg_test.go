package dddg

import (
	"math"
	"testing"

	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/trace"
)

// traceOf runs prog with a recorder attached and returns its entries.
func traceOf(t *testing.T, p *ir.Program, setup func(*cpu.Memory) []uint64) []trace.Entry {
	t.Helper()
	rec := trace.NewRecorder(0)
	cfg := cpu.DefaultConfig()
	cfg.Hook = rec.Hook()
	img := cpu.NewMemory(1 << 16)
	args := setup(img)
	m, err := cpu.New(p, img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(args...); err != nil {
		t.Fatal(err)
	}
	return rec.Entries()
}

// buildKernelLoop builds a driver that calls an expensive kernel per
// element: out[i] = sqrt(exp(x[i]) + log(1+x[i]*x[i])).  The kernel body
// is a natural memoization candidate: one input, heavy compute.
func buildKernelLoop(n int) *ir.Program {
	p := ir.NewProgram("main")

	k := p.NewFunc("kernel", []ir.Type{ir.F32}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	kbu := ir.At(k, kb)
	x := k.Params[0]
	e := kbu.Un(ir.Exp, ir.F32, x)
	x2 := kbu.Bin(ir.FMul, ir.F32, x, x)
	one := kbu.ConstF32(1)
	l := kbu.Bin(ir.FAdd, ir.F32, x2, one)
	lg := kbu.Un(ir.Log, ir.F32, l)
	s := kbu.Bin(ir.FAdd, ir.F32, e, lg)
	r := kbu.Un(ir.Sqrt, ir.F32, s)
	kbu.Ret(r)

	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64}, nil)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	done := f.NewBlock("done")
	bu := ir.At(f, entry)
	i := bu.ConstI32(0)
	nC := bu.ConstI32(int32(n))
	inc := bu.ConstI32(1)
	four := bu.ConstI64(4)
	src := bu.Mov(ir.I64, f.Params[0])
	dst := bu.Mov(ir.I64, f.Params[1])
	bu.Jmp(loop)
	bu.SetBlock(loop)
	c := bu.Bin(ir.CmpLT, ir.I32, i, nC)
	bu.Br(c, body, done)
	bu.SetBlock(body)
	v := bu.Load(ir.F32, src, 0)
	res := bu.Call("kernel", 1, v)
	bu.Store(ir.F32, dst, 0, res[0])
	bu.MovTo(ir.I32, i, bu.Bin(ir.Add, ir.I32, i, inc))
	bu.MovTo(ir.I64, src, bu.Bin(ir.Add, ir.I64, src, four))
	bu.MovTo(ir.I64, dst, bu.Bin(ir.Add, ir.I64, dst, four))
	bu.Jmp(loop)
	bu.SetBlock(done)
	bu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func kernelTrace(t *testing.T, n int) []trace.Entry {
	return traceOf(t, buildKernelLoop(n), func(img *cpu.Memory) []uint64 {
		src := img.Alloc(n * 4)
		dst := img.Alloc(n * 4)
		for i := 0; i < n; i++ {
			img.SetF32(src+uint64(i*4), float32(i)*0.25)
		}
		return []uint64{src, dst}
	})
}

func TestBuildGraphShape(t *testing.T) {
	es := kernelTrace(t, 4)
	g := Build(es)
	if len(g.Weight) != len(es) {
		t.Fatalf("graph size %d != trace size %d", len(g.Weight), len(es))
	}
	if g.TotalWeight == 0 {
		t.Fatal("zero total weight")
	}
	// Control vertices are excluded: their SID is -1.
	for i, e := range es {
		if e.Control && g.SID[i] != -1 {
			t.Errorf("control entry %d kept in graph", i)
		}
	}
}

func TestGraphIsAcyclic(t *testing.T) {
	// Dependencies always point backward in a dynamic trace.
	g := Build(kernelTrace(t, 8))
	for v, preds := range g.Pred {
		for _, p := range preds {
			if int(p) >= v {
				t.Fatalf("forward/self dependency %d -> %d", p, v)
			}
		}
	}
}

func TestSearchFindsKernelBody(t *testing.T) {
	g := Build(kernelTrace(t, 8))
	cands := g.Search(SearchConfig{MinRatio: 10, MaxInputs: 4, MaxVertices: 64, MinVertices: 3})
	if len(cands) == 0 {
		t.Fatal("no candidates found in an obviously memoizable kernel")
	}
	// The best candidate should have a single input (the kernel
	// parameter) and include the heavy intrinsics.
	best := cands[0]
	for _, c := range cands {
		if c.CIRatio > best.CIRatio {
			best = c
		}
	}
	if best.Inputs != 1 {
		t.Errorf("best candidate inputs = %d, want 1", best.Inputs)
	}
	hasMath := false
	for _, v := range best.Vertices {
		if g.Op[v] == ir.Exp || g.Op[v] == ir.Log || g.Op[v] == ir.Sqrt {
			hasMath = true
		}
	}
	if !hasMath {
		t.Error("best candidate excludes the math intrinsics")
	}
	if best.CIRatio < 50 {
		t.Errorf("CI ratio = %.1f, expected a high ratio for this kernel", best.CIRatio)
	}
}

func TestCandidateClosureProperties(t *testing.T) {
	// Every candidate must satisfy the paper's closure condition:
	// edges leaving the subgraph only depart from the output vertex.
	g := Build(kernelTrace(t, 6))
	cands := g.Search(DefaultSearch())
	if len(cands) == 0 {
		t.Skip("no candidates at default thresholds")
	}
	for _, c := range cands {
		inS := make(map[int32]bool, len(c.Vertices))
		for _, v := range c.Vertices {
			inS[v] = true
		}
		for _, v := range c.Vertices {
			if v == c.Output {
				continue
			}
			for _, s := range g.Succ[v] {
				if !inS[s] {
					t.Fatalf("non-output vertex %d has consumer %d outside subgraph", v, s)
				}
			}
		}
	}
}

func TestAnalyzeDedupsLoopIterations(t *testing.T) {
	g := Build(kernelTrace(t, 16))
	a := g.Analyze(SearchConfig{MinRatio: 10, MaxInputs: 4, MaxVertices: 64, MinVertices: 3}, 0.5)
	if a.DynamicSubgraphs < 16 {
		t.Errorf("dynamic subgraphs = %d, want ≥ 16 (one per iteration)", a.DynamicSubgraphs)
	}
	// All loop iterations share static IDs: few unique groups.
	if len(a.UniqueGroups) == 0 || len(a.UniqueGroups) > 3 {
		t.Errorf("unique groups = %d, want 1-3", len(a.UniqueGroups))
	}
	if a.Coverage <= 0.2 || a.Coverage > 1.0 {
		t.Errorf("coverage = %.3f, want substantial (kernel dominates runtime)", a.Coverage)
	}
	if a.MeanCIRatio < 10 {
		t.Errorf("mean CI ratio = %.2f", a.MeanCIRatio)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	g := Build(nil)
	a := g.Analyze(DefaultSearch(), 0.5)
	if a.DynamicSubgraphs != 0 || len(a.UniqueGroups) != 0 || a.Coverage != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestMaxInputsFilters(t *testing.T) {
	// A kernel with many independent inputs must be rejected when
	// MaxInputs is below its input count.
	p := ir.NewProgram("wide")
	f := p.NewFunc("wide", []ir.Type{ir.I64}, []ir.Type{ir.F32})
	bb := f.NewBlock("entry")
	bu := ir.At(f, bb)
	var acc ir.Reg
	for i := 0; i < 8; i++ {
		v := bu.Load(ir.F32, f.Params[0], int64(i*4))
		sq := bu.Bin(ir.FMul, ir.F32, v, v)
		if i == 0 {
			acc = sq
		} else {
			acc = bu.Bin(ir.FAdd, ir.F32, acc, sq)
		}
	}
	r := bu.Un(ir.Sqrt, ir.F32, acc)
	bu.Ret(r)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	es := traceOf(t, p, func(img *cpu.Memory) []uint64 {
		base := img.Alloc(32)
		for i := 0; i < 8; i++ {
			img.SetF32(base+uint64(i*4), float32(i+1))
		}
		return []uint64{base}
	})
	g := Build(es)
	narrow := g.Search(SearchConfig{MinRatio: 1, MaxInputs: 2, MaxVertices: 64, MinVertices: 5})
	wide := g.Search(SearchConfig{MinRatio: 1, MaxInputs: 12, MaxVertices: 64, MinVertices: 5})
	if len(wide) == 0 {
		t.Fatal("8-input kernel not found with MaxInputs=12")
	}
	for _, c := range narrow {
		if c.Inputs > 2 {
			t.Errorf("candidate with %d inputs passed MaxInputs=2", c.Inputs)
		}
	}
	// The large 8-load subgraph must be absent from the narrow search.
	for _, c := range narrow {
		if len(c.Vertices) >= 20 {
			t.Errorf("narrow search kept a %d-vertex subgraph", len(c.Vertices))
		}
	}
}

func TestSubsetHelper(t *testing.T) {
	if !isSubset([]int32{1, 3}, []int32{1, 2, 3}) {
		t.Error("subset not detected")
	}
	if isSubset([]int32{1, 4}, []int32{1, 2, 3}) {
		t.Error("non-subset accepted")
	}
	if !isSubset(nil, []int32{1}) {
		t.Error("empty set is a subset of anything")
	}
}

func TestOverlapHelper(t *testing.T) {
	if got := overlap([]int32{1, 2, 3}, []int32{2, 3, 4}); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("overlap = %v, want 2/3", got)
	}
	if got := overlap([]int32{1}, []int32{2}); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
}

func TestMergeSIDs(t *testing.T) {
	got := mergeSIDs([]int32{1, 3, 5}, []int32{2, 3, 6})
	want := []int32{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	p := buildKernelLoop(64)
	rec := trace.NewRecorder(0)
	cfg := cpu.DefaultConfig()
	cfg.Hook = rec.Hook()
	img := cpu.NewMemory(1 << 16)
	src := img.Alloc(64 * 4)
	dst := img.Alloc(64 * 4)
	for i := 0; i < 64; i++ {
		img.SetF32(src+uint64(i*4), float32(i))
	}
	m, _ := cpu.New(p, img, cfg)
	if _, err := m.Run(src, dst); err != nil {
		b.Fatal(err)
	}
	g := Build(rec.Entries())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(DefaultSearch())
	}
}
