// Package dddg builds the dynamic data dependence graph of a recorded
// trace and searches it for AxMemo-transformable candidate subgraphs,
// standing in for the paper's ALADDIN-based analysis (ISCA'19 §5,
// Fig. 5 ②③).
//
// A DDDG G = (V, E) is a DAG whose vertices are dynamic instructions
// weighted by estimated latency and whose edges are true data
// dependencies.  A candidate subgraph S with a single output vertex v
// satisfies the paper's two closure conditions: every edge entering S
// lands on an input vertex, and every edge leaving S departs from an
// output vertex.  Its desirability is the Compute-to-Input ratio
//
//	CI_Ratio = Σ_{u∈S} weight(u) / #inputs(S)     (Eq. 1)
//
// The search runs a breadth-first closure from each vertex of the
// transpose graph, admitting a predecessor only when all of its consumers
// already lie inside S (which preserves the single-output property), and
// keeps the prefix with the highest CI_Ratio.
package dddg

import (
	"sort"

	"axmemo/internal/ir"
	"axmemo/internal/trace"
)

// Graph is the dependence graph of one trace.
type Graph struct {
	// Weight per vertex (estimated cycles).
	Weight []int32
	// SID per vertex (static instruction id).
	SID []int32
	// Op per vertex.
	Op []ir.Op
	// Succ and Pred are the adjacency lists.
	Succ [][]int32
	Pred [][]int32
	// LiveIns per vertex: external value sources.
	LiveIns [][]uint64
	// TotalWeight is the weight sum over all (non-control) vertices.
	TotalWeight int64
}

// Build constructs the DDDG, dropping control vertices (branches, calls)
// which carry no data values.
func Build(entries []trace.Entry) *Graph {
	n := len(entries)
	g := &Graph{
		Weight:  make([]int32, n),
		SID:     make([]int32, n),
		Op:      make([]ir.Op, n),
		Succ:    make([][]int32, n),
		Pred:    make([][]int32, n),
		LiveIns: make([][]uint64, n),
	}
	control := make([]bool, n)
	for i, e := range entries {
		control[i] = e.Control
		if e.Control {
			continue
		}
		g.Weight[i] = e.Weight
		g.SID[i] = e.SID
		g.Op[i] = e.Op
		g.LiveIns[i] = e.LiveIns
		g.TotalWeight += int64(e.Weight)
		for _, d := range e.Deps {
			if control[d] {
				continue
			}
			g.Pred[i] = append(g.Pred[i], d)
			g.Succ[d] = append(g.Succ[d], int32(i))
		}
	}
	// Mark control vertices as zero-weight orphans so the search skips
	// them.
	for i := range entries {
		if control[i] {
			g.Op[i] = ir.Nop
			g.SID[i] = -1
		}
	}
	return g
}

// Candidate is one transformable subgraph.
type Candidate struct {
	// Output is the sole output vertex.
	Output int32
	// Vertices lists the member vertex ids.
	Vertices []int32
	// Inputs is the number of distinct external value sources.
	Inputs int
	// Weight is the summed vertex weight.
	Weight int64
	// CIRatio is Eq. 1.
	CIRatio float64
	// SIDs is the sorted set of static instruction ids, the structural
	// fingerprint used for dedup (§5, "comparing their static
	// instruction IDs").
	SIDs []int32
}

// SearchConfig bounds the candidate search.
type SearchConfig struct {
	// MinRatio drops candidates below this CI_Ratio threshold.
	MinRatio float64
	// MaxInputs drops candidates with more external inputs than the
	// hardware can profitably hash.
	MaxInputs int
	// MaxVertices caps subgraph growth per root.
	MaxVertices int
	// MinVertices drops degenerate one-instruction candidates.
	MinVertices int
}

// DefaultSearch returns the thresholds used by the Table 1 analysis.
func DefaultSearch() SearchConfig {
	return SearchConfig{MinRatio: 5, MaxInputs: 12, MaxVertices: 256, MinVertices: 3}
}

// Search finds, for every vertex v, the best transformable subgraph with
// v as its sole output, and returns all candidates passing the
// thresholds.  This is the "directed breadth first search rooted at each
// vertex of the transpose of G" of §5.
func (g *Graph) Search(cfg SearchConfig) []Candidate {
	n := len(g.Weight)
	inS := make([]int32, n) // epoch marker
	var epoch int32
	var cands []Candidate

	members := make([]int32, 0, cfg.MaxVertices)
	ext := make(map[uint64]int) // external source key -> consumer count

	for v := 0; v < n; v++ {
		if g.SID[v] < 0 || g.Weight[v] == 0 {
			continue // control vertex
		}
		epoch++
		members = members[:0]
		for k := range ext {
			delete(ext, k)
		}

		// Seed with the root.
		inS[v] = epoch
		members = append(members, int32(v))
		weight := int64(g.Weight[v])
		addSources(g, int32(v), inS, epoch, ext)

		best := Candidate{Output: int32(v)}
		record := func() {
			inputs := len(ext)
			if inputs == 0 {
				inputs = 1
			}
			ratio := float64(weight) / float64(inputs)
			if ratio > best.CIRatio {
				best.CIRatio = ratio
				best.Inputs = inputs
				best.Weight = weight
				best.Vertices = append(best.Vertices[:0], members...)
			}
		}
		record()

		// Breadth-first closure over the transpose: repeatedly admit
		// predecessors all of whose consumers are inside S.
		for cursor := 0; cursor < len(members) && len(members) < cfg.MaxVertices; cursor++ {
			for _, p := range g.Pred[members[cursor]] {
				if inS[p] == epoch || g.SID[p] < 0 {
					continue
				}
				if !allConsumersIn(g, p, inS, epoch) {
					continue
				}
				inS[p] = epoch
				members = append(members, p)
				weight += int64(g.Weight[p])
				// p is no longer an external source.
				delete(ext, vertexKey(p))
				addSources(g, p, inS, epoch, ext)
				record()
				if len(members) >= cfg.MaxVertices {
					break
				}
			}
		}

		if len(best.Vertices) >= cfg.MinVertices &&
			best.Inputs <= cfg.MaxInputs &&
			best.CIRatio >= cfg.MinRatio {
			best.SIDs = sidSet(g, best.Vertices)
			cands = append(cands, best)
		}
	}
	return cands
}

// vertexKey is the external-source key of an in-graph producer vertex.
func vertexKey(v int32) uint64 { return uint64(uint32(v)) }

// addSources registers the external inputs that vertex v pulls into S:
// producer vertices outside S and v's live-in values.
func addSources(g *Graph, v int32, inS []int32, epoch int32, ext map[uint64]int) {
	for _, p := range g.Pred[v] {
		if inS[p] != epoch {
			ext[vertexKey(p)]++
		}
	}
	for _, k := range g.LiveIns[v] {
		ext[k]++
	}
}

// allConsumersIn reports whether every successor of p is already in S —
// the admission rule that keeps the subgraph single-output.
func allConsumersIn(g *Graph, p int32, inS []int32, epoch int32) bool {
	for _, s := range g.Succ[p] {
		if inS[s] != epoch {
			return false
		}
	}
	return len(g.Succ[p]) > 0
}

// sidSet returns the sorted, deduplicated static ids of the members.
func sidSet(g *Graph, members []int32) []int32 {
	set := make(map[int32]struct{}, len(members))
	for _, m := range members {
		set[g.SID[m]] = struct{}{}
	}
	out := make([]int32, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
