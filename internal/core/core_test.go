package core

import (
	"math"
	"testing"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// buildToy builds a driver + heavy kernel program: out[i] = kernel(x[i]),
// kernel = exp-based with one input.
func buildToy() (*ir.Program, compiler.Region) {
	p := ir.NewProgram("main")
	libm.BuildInto(p)
	k := p.NewFunc("kern", []ir.Type{ir.F32}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	kbu := ir.At(k, kb)
	e := kbu.Call(libm.FnExp, 1, kbu.Un(ir.FNeg, ir.F32, k.Params[0]))[0]
	r := kbu.Bin(ir.FAdd, ir.F32, e, kbu.Un(ir.Sqrt, ir.F32, k.Params[0]))
	kbu.Ret(r)

	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	bu := ir.At(f, fb)
	loopCond := f.NewBlock("cond")
	loopBody := f.NewBlock("body")
	done := f.NewBlock("done")
	zero := bu.ConstI32(0)
	one := bu.ConstI32(1)
	four := bu.ConstI64(4)
	i := bu.Mov(ir.I32, zero)
	src := bu.Mov(ir.I64, f.Params[0])
	dst := bu.Mov(ir.I64, f.Params[1])
	bu.Jmp(loopCond)
	bu.SetBlock(loopCond)
	c := bu.Bin(ir.CmpLT, ir.I32, i, f.Params[2])
	bu.Br(c, loopBody, done)
	bu.SetBlock(loopBody)
	v := bu.Load(ir.F32, src, 0)
	r2 := bu.Call("kern", 1, v)
	bu.Store(ir.F32, dst, 0, r2[0])
	bu.MovTo(ir.I32, i, bu.Bin(ir.Add, ir.I32, i, one))
	bu.MovTo(ir.I64, src, bu.Bin(ir.Add, ir.I64, src, four))
	bu.MovTo(ir.I64, dst, bu.Bin(ir.Add, ir.I64, dst, four))
	bu.Jmp(loopCond)
	bu.SetBlock(done)
	bu.Ret()
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p, compiler.Region{Func: "kern", LUT: 0, InputParams: []int{0}, ParamTrunc: []uint8{0}}
}

func stage(img *cpu.Memory, n, period int) (uint64, uint64) {
	src := img.Alloc(n * 4)
	dst := img.Alloc(n * 4)
	for i := 0; i < n; i++ {
		img.SetF32(src+uint64(i*4), float32(i%period)*0.25)
	}
	return src, dst
}

func TestAnalyzeFindsKernel(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	img := cpu.NewMemory(1 << 16)
	src, dst := stage(img, 32, 8)
	a, err := s.Analyze(img, []uint64{src, dst, 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.DynamicSubgraphs == 0 || a.Coverage <= 0 {
		t.Fatalf("analysis found nothing: %+v", a)
	}
	names := DiscoverRegions(p, a)
	found := false
	for _, n := range names {
		if n == "kern" || n == libm.FnExp {
			found = true
		}
	}
	if !found {
		t.Errorf("DiscoverRegions = %v, want the kernel or its libm body ranked", names)
	}
}

func TestTransformOnce(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	if s.Transformed() {
		t.Fatal("fresh system claims transformed")
	}
	if err := s.Transform(); err != nil {
		t.Fatal(err)
	}
	if !s.Transformed() {
		t.Fatal("Transform did not mark the system")
	}
	if err := s.Transform(); err == nil {
		t.Error("double Transform accepted")
	}
}

func TestAnalyzeAfterTransformRejected(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	if err := s.Transform(); err != nil {
		t.Fatal(err)
	}
	img := cpu.NewMemory(1 << 16)
	if _, err := s.Analyze(img, nil, 0); err == nil {
		t.Error("Analyze after Transform accepted")
	}
}

func TestNewMachineRequiresTransform(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	if _, err := s.NewMachine(cpu.NewMemory(64), RunOptions{}); err == nil {
		t.Error("NewMachine before Transform accepted")
	}
}

func TestEndToEndHardware(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	if err := s.Transform(); err != nil {
		t.Fatal(err)
	}
	img := cpu.NewMemory(1 << 16)
	src, dst := stage(img, 256, 4)
	m, err := s.NewMachine(img, RunOptions{L1KB: 8, L2KB: 256})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(src, dst, 256)
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.Stats.Memo.HitRate(); hr < 0.9 {
		t.Errorf("hit rate %.3f on 4-value input, want ≥ 0.9", hr)
	}
	// Values must be correct: kernel(x) for x = 0.25.
	want := float32(math.Exp(-0.25)) + float32(math.Sqrt(0.25))
	got := img.F32(dst + 4)
	if diff := math.Abs(float64(got - want)); diff > 1e-4 {
		t.Errorf("output = %v, want ≈ %v", got, want)
	}
}

func TestEndToEndSoftware(t *testing.T) {
	for _, mode := range []RunOptions{{SoftwareLUT: true}, {ATM: true}} {
		p, region := buildToy()
		s := NewSystem(p, region)
		if err := s.Transform(); err != nil {
			t.Fatal(err)
		}
		img := cpu.NewMemory(1 << 16)
		src, dst := stage(img, 64, 4)
		m, err := s.NewMachine(img, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(src, dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Soft.Lookups != 64 {
			t.Errorf("software lookups = %d, want 64", res.Stats.Soft.Lookups)
		}
	}
}

func TestMutuallyExclusiveModes(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	if err := s.Transform(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewMachine(cpu.NewMemory(64), RunOptions{SoftwareLUT: true, ATM: true}); err == nil {
		t.Error("SoftwareLUT+ATM accepted")
	}
}

func TestSelectTruncationRewritesRegions(t *testing.T) {
	p, region := buildToy()
	s := NewSystem(p, region)
	eval := func(bits uint) (float64, error) {
		if bits <= 6 {
			return 0.0005, nil
		}
		return 0.5, nil
	}
	bits, err := s.SelectTruncation(eval, false, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 6 {
		t.Errorf("selected %d bits, want 6", bits)
	}
	for _, tb := range s.Regions[0].ParamTrunc {
		if tb != 6 {
			t.Errorf("region truncation = %d, want 6", tb)
		}
	}
	_ = p
}
