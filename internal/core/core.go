// Package core ties the AxMemo pieces together into the workflow of the
// paper's Fig. 5: trace a program on sample inputs, analyze its dynamic
// data dependence graph for memoizable regions, select input truncation
// levels against an error bound, rewrite the regions into the
// lookup/compute/update structure, and execute the result on the modeled
// core with a memoization unit attached.
//
// It is the engine behind the public root package (axmemo) and the
// command-line tools.
package core

import (
	"fmt"

	"axmemo/internal/atm"
	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/dddg"
	"axmemo/internal/fault"
	"axmemo/internal/ir"
	"axmemo/internal/memo"
	"axmemo/internal/softmemo"
	"axmemo/internal/trace"
)

// System binds a program to its memoization regions.
type System struct {
	Program *ir.Program
	Regions []compiler.Region

	transformed bool
}

// NewSystem wraps a finalized program and its region specs.
func NewSystem(prog *ir.Program, regions ...compiler.Region) *System {
	return &System{Program: prog, Regions: regions}
}

// Analyze runs the program on the given arguments with the dynamic
// tracer attached and returns the DDDG candidate analysis (Fig. 5 ①–③).
// It must be called before Transform: the analysis needs the unmemoized
// program.  maxEntries bounds the trace (0 = default).
func (s *System) Analyze(img *cpu.Memory, args []uint64, maxEntries int) (dddg.Analysis, error) {
	if s.transformed {
		return dddg.Analysis{}, fmt.Errorf("core: analyze before Transform, not after")
	}
	rec := trace.NewRecorder(maxEntries)
	cfg := cpu.DefaultConfig()
	cfg.Hook = rec.Hook()
	m, err := cpu.New(s.Program, img, cfg)
	if err != nil {
		return dddg.Analysis{}, err
	}
	if _, err := m.Run(args...); err != nil {
		return dddg.Analysis{}, err
	}
	g := dddg.Build(rec.Entries())
	return g.Analyze(dddg.DefaultSearch(), 0.5), nil
}

// SelectTruncation profiles increasing uniform truncation across all
// regions using eval (which must rebuild and run the full application at
// the given level and return its output error) and rewrites the regions'
// truncation fields with the chosen level (Fig. 5 ④, first half).
func (s *System) SelectTruncation(eval compiler.Evaluator, imageOutput bool, maxBits uint) (uint, error) {
	bits, err := compiler.SelectTruncation(eval, compiler.ErrorBound(imageOutput), maxBits)
	if err != nil {
		return 0, err
	}
	for ri := range s.Regions {
		r := &s.Regions[ri]
		for i := range r.ParamTrunc {
			r.ParamTrunc[i] = uint8(bits)
		}
		if r.ConvertLoads {
			r.LoadTrunc = uint8(bits)
		}
	}
	return bits, nil
}

// Transform rewrites the regions into the Fig. 1 branch structure.  It
// may be applied once per System.
func (s *System) Transform() error {
	if s.transformed {
		return fmt.Errorf("core: program already transformed")
	}
	if err := compiler.Transform(s.Program, s.Regions); err != nil {
		return err
	}
	s.transformed = true
	return nil
}

// Transformed reports whether Transform has run.
func (s *System) Transformed() bool { return s.transformed }

// RunOptions selects the execution configuration for NewMachine.
type RunOptions struct {
	// L1KB sizes the dedicated L1 LUT (default 8).
	L1KB int
	// L2KB sizes the optional L2 LUT carved from the shared cache
	// (0 = none).
	L2KB int
	// DisableMonitor turns the quality-monitoring unit off.
	DisableMonitor bool
	// TrackCollisions enables hash-collision accounting.
	TrackCollisions bool
	// SoftwareLUT services the memo instructions with the §6.2
	// software implementation instead of hardware.
	SoftwareLUT bool
	// ATM services them with the prior-work ATM runtime.
	ATM bool
	// Faults, if non-nil and enabled, injects the planned hardware
	// faults into the memoization unit and the caches.
	Faults *fault.Plan
	// GuardBudget, if > 0, arms the per-LUT quality guard with this
	// relative-error budget: a LUT whose sampled error estimate exceeds
	// it is invalidated and bypassed until the guard's cooldown expires.
	// Requires the monitor (ignored under SoftwareLUT/ATM).
	GuardBudget float64
	// GuardCooldown overrides the guard's re-enable delay, counted in
	// lookups addressed to the disabled LUT (0 = default).
	GuardCooldown uint64
	// MaxCycles caps simulated time; see cpu.Config.MaxCycles.
	MaxCycles uint64
}

// NewMachine builds a simulator for the (transformed) program over img.
// With zero-valued options it attaches the paper's default hardware: an
// 8 KB L1 LUT, no L2 LUT, quality monitoring on.
func (s *System) NewMachine(img *cpu.Memory, opts RunOptions) (*cpu.Machine, error) {
	if !s.transformed {
		return nil, fmt.Errorf("core: Transform before NewMachine (or run the baseline directly with cpu.New)")
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = opts.MaxCycles
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
		cfg.Hierarchy.Faults = opts.Faults
	}
	switch {
	case opts.SoftwareLUT && opts.ATM:
		return nil, fmt.Errorf("core: SoftwareLUT and ATM are mutually exclusive")
	case opts.SoftwareLUT:
		u, err := softmemo.New(softmemo.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg.Soft = u
	case opts.ATM:
		u, err := atm.New(atm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg.Soft = u
	default:
		base := memo.DefaultConfig()
		if opts.L1KB > 0 {
			base.L1.SizeBytes = opts.L1KB << 10
		}
		if opts.L2KB > 0 {
			base.L2 = &memo.LUTConfig{SizeBytes: opts.L2KB << 10, DataBytes: base.L1.DataBytes, HitLatency: 13}
			wayBytes := cfg.Hierarchy.L2.SizeBytes / cfg.Hierarchy.L2.Ways
			cfg.Hierarchy.L2ReservedWays = (opts.L2KB << 10) / wayBytes
		}
		base.Monitor.Enabled = !opts.DisableMonitor
		base.TrackCollisions = opts.TrackCollisions
		base.Faults = opts.Faults
		if opts.GuardBudget > 0 {
			base.Monitor.Enabled = true // the guard samples through the monitor
			base.Monitor.Guard = memo.DefaultGuard(opts.GuardBudget)
			if opts.GuardCooldown > 0 {
				base.Monitor.Guard.CooldownLookups = opts.GuardCooldown
			}
		}
		full, kinds, err := compiler.MemoConfigFor(s.Program, s.Regions, base)
		if err != nil {
			return nil, err
		}
		cfg.Memo = &full
		m, err := cpu.New(s.Program, img, cfg)
		if err != nil {
			return nil, err
		}
		for lut, kind := range kinds {
			if err := m.MemoUnit().SetOutputKind(lut, kind); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	return cpu.New(s.Program, img, cfg)
}

// DiscoverRegions suggests kernel functions to memoize from a DDDG
// analysis: it maps each unique candidate group back to the function
// containing its static instructions and ranks functions by the dynamic
// weight their candidates cover.  It is the automatic counterpart of the
// hand-written region specs (§5's "programmers may specify specific
// functions for analysis").
func DiscoverRegions(prog *ir.Program, a dddg.Analysis) []string {
	// Map SIDs to functions.
	owner := map[int32]string{}
	for name, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				owner[int32(in.SID)] = name
			}
		}
	}
	weight := map[string]int64{}
	for _, grp := range a.UniqueGroups {
		votes := map[string]int{}
		for _, sid := range grp.SIDs {
			votes[owner[sid]]++
		}
		best, bestN := "", 0
		for fn, n := range votes {
			if n > bestN {
				best, bestN = fn, n
			}
		}
		if best != "" && best != prog.Entry {
			weight[best] += grp.Weight
		}
	}
	var names []string
	for n := range weight {
		names = append(names, n)
	}
	// Sort by covered weight, descending; ties by name.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0; j-- {
			cur, prev := names[j], names[j-1]
			if weight[cur] > weight[prev] || (weight[cur] == weight[prev] && cur < prev) {
				names[j], names[j-1] = prev, cur
			} else {
				break
			}
		}
	}
	return names
}
