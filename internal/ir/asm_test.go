package ir

import (
	"strings"
	"testing"
)

// buildRich constructs a program exercising every instruction form the
// textual IR can carry.
func buildRich() *Program {
	p := NewProgram("main")

	k := p.NewFunc("kernel", []Type{F32, I64}, []Type{F32, F32})
	entry := k.NewBlock("entry")
	hitB := k.NewBlock("hit")
	missB := k.NewBlock("miss")
	bu := At(k, entry)
	ld := bu.LdCRC(F32, k.Params[1], -4, 2, 6)
	bu.RegCRC(F32, k.Params[0], 2, 8)
	data, hit := bu.Lookup(F32, 2)
	bu.Br(hit, hitB, missB)
	bu.SetBlock(hitB)
	mask := bu.ConstI64(0xFFFFFFFF)
	lo := bu.Bin(And, I64, data, mask)
	sh := bu.ConstI64(32)
	hi := bu.Bin(Shr, I64, data, sh)
	bu.Ret(lo, hi)
	bu.SetBlock(missB)
	s := bu.Un(Sqrt, F32, bu.Bin(FAdd, F32, k.Params[0], ld))
	c := bu.Un(Cos, F32, s)
	packed := bu.Bin(Or, I64, bu.Bin(Shl, I64, c, sh), s)
	bu.Update(I64, packed, 2)
	bu.Invalidate(3)
	bu.Ret(s, c)

	f := p.NewFunc("main", []Type{I64, I32}, nil)
	fb := f.NewBlock("entry")
	cond := f.NewBlock("cond")
	body := f.NewBlock("body")
	done := f.NewBlock("done")
	mb := At(f, fb)
	i := mb.Mov(I32, mb.ConstI32(0))
	one := mb.ConstI32(1)
	fc := mb.ConstF32(1.5)
	f64c := mb.ConstF64(-2.75)
	cv := mb.Cvt(F64, F32, f64c)
	_ = cv
	mb.Jmp(cond)
	mb.SetBlock(cond)
	lt := mb.Bin(CmpLT, I32, i, f.Params[1])
	mb.Br(lt, body, done)
	mb.SetBlock(body)
	v := mb.Load(F32, f.Params[0], 8)
	res := mb.Call("kernel", 2, v, f.Params[0])
	mb.Store(F32, f.Params[0], 16, res[0])
	mb.Store(F32, f.Params[0], 20, res[1])
	sum := mb.Bin(FAdd, F32, res[0], fc)
	_ = sum
	mb.MovTo(I32, i, mb.Bin(Add, I32, i, one))
	mb.Jmp(cond)
	mb.SetBlock(done)
	mb.Ret()

	ep := p.NewFunc("noargs", nil, nil)
	eb := ep.NewBlock("entry")
	ebu := At(ep, eb)
	ebu.Call("noret", 0)
	ebu.Ret()
	nr := p.NewFunc("noret", nil, nil)
	nb := nr.NewBlock("entry")
	At(nr, nb).Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func TestDumpParseRoundTrip(t *testing.T) {
	orig := buildRich()
	text := orig.Dump()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("parse:\n%s\nerror: %v", text, err)
	}
	again := parsed.Dump()
	if text != again {
		t.Errorf("round trip diverged:\n--- first dump ---\n%s\n--- second dump ---\n%s", text, again)
	}
	if parsed.Entry != "main" {
		t.Errorf("entry = %q", parsed.Entry)
	}
	if len(parsed.Funcs) != len(orig.Funcs) {
		t.Errorf("parsed %d funcs, want %d", len(parsed.Funcs), len(orig.Funcs))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no program", "func f() {\nb0: ;\n\tret\n}\n"},
		{"bad mnemonic", "program f\nfunc f() {\nb0: ;\n\tr0 = bogus.f32 r1\n\tret\n}\n"},
		{"bad register", "program f\nfunc f() {\nb0: ;\n\tx0 = const.i32 1\n\tret\n}\n"},
		{"bad type", "program f\nfunc f(r0 q32) {\nb0: ;\n\tret\n}\n"},
		{"unterminated", "program f\nfunc f() {\nb0: ;\n\tret\n"},
		{"insn before block", "program f\nfunc f() {\n\tret\n}\n"},
		{"bad literal", "program f\nfunc f() {\nb0: ;\n\tr0 = const.i32 zebra\n\tret\n}\n"},
		{"bad lut", "program f\nfunc f() {\nb0: ;\n\tinvalidate lut9\n\tret\n}\n"},
		{"block out of order", "program f\nfunc f() {\nb1: ;\n\tret\n}\n"},
		{"wrong operand count", "program f\nfunc f(r0 f32) {\nb0: ;\n\tr1 = fadd.f32 r0\n\tret\n}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("accepted malformed input:\n%s", c.src)
			}
		})
	}
}

func TestParseMinimalProgram(t *testing.T) {
	src := `program main

func main(r0 f32) (f32) {
b0: ; entry
	r1 = fmul.f32 r0, r0
	ret r1
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	if f == nil || f.NumRegs() != 2 || len(f.Blocks) != 1 {
		t.Fatalf("parsed shape wrong: %+v", f)
	}
	if f.Blocks[0].Instrs[0].Op != FMul {
		t.Errorf("op = %s", f.Blocks[0].Instrs[0].Op)
	}
	if p.Dump() != src {
		t.Errorf("dump:\n%s\nwant:\n%s", p.Dump(), src)
	}
}

func TestParseNegativeOffsetsAndLiterals(t *testing.T) {
	src := `program main

func main(r0 i64) (f32) {
b0: ; entry
	r1 = load.f32 [r0+-8]
	r2 = const.f32 -0.0015
	r3 = const.i32 -42
	r4 = const.f64 2.5
	r5 = const.i64 -4000000000
	r6 = fadd.f32 r1, r2
	ret r6
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := p.Funcs["main"].Blocks[0].Instrs
	if int64(ins[0].Imm) != -8 {
		t.Errorf("offset = %d", int64(ins[0].Imm))
	}
	if got := int32(uint32(ins[2].Imm)); got != -42 {
		t.Errorf("i32 literal = %d", got)
	}
	if got := int64(ins[4].Imm); got != -4000000000 {
		t.Errorf("i64 literal = %d", got)
	}
	if p.Dump() != src {
		t.Errorf("dump diverged:\n%s", p.Dump())
	}
}

func TestSplitArgsRespectsBrackets(t *testing.T) {
	got := splitArgs("[r0+-4], lut2, n6")
	want := []string{"[r0+-4]", "lut2", "n6"}
	if len(got) != len(want) {
		t.Fatalf("splitArgs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitArgs = %v, want %v", got, want)
		}
	}
}

func TestParsedProgramValidates(t *testing.T) {
	// Parse must return a finalized (validated, SID-assigned) program.
	p, err := Parse(buildRich().Dump())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if seen[in.SID] {
					t.Fatal("duplicate SIDs after parse")
				}
				seen[in.SID] = true
			}
		}
	}
}

func TestDumpMentionsEverything(t *testing.T) {
	text := buildRich().Dump()
	for _, want := range []string{
		"program main", "func kernel(r0 f32, r1 i64) (f32, f32) {",
		"ld_crc.f32 [r1+-4], lut2, n6", "reg_crc.f32 r0, lut2, n8",
		"lookup lut2", "update r", "invalidate lut3",
		"cvt.f64.f32", "call kernel(", "call noret()",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}
