package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads a program in the textual IR format produced by
// Program.Dump / Function.Disassemble:
//
//	program main
//
//	func square(r0 f32) (f32) {
//	b0: ; entry
//		r1 = fmul.f32 r0, r0
//		ret r1
//	}
//
// Parse(Dump(p)) reconstructs p exactly (up to NaN payloads in float
// constants); the package tests assert this round trip over every
// benchmark program.  The returned program is finalized.
func Parse(src string) (*Program, error) {
	ps := &parser{lines: strings.Split(src, "\n")}
	prog, err := ps.program()
	if err != nil {
		return nil, fmt.Errorf("ir: line %d: %w", ps.ln, err)
	}
	if err := prog.Finalize(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lines []string
	ln    int // 1-based line number of the line just consumed
}

// next returns the next non-empty line with comments-only lines skipped.
func (ps *parser) next() (string, bool) {
	for ps.ln < len(ps.lines) {
		line := strings.TrimSpace(ps.lines[ps.ln])
		ps.ln++
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		return line, true
	}
	return "", false
}

func (ps *parser) program() (*Program, error) {
	line, ok := ps.next()
	if !ok || !strings.HasPrefix(line, "program ") {
		return nil, fmt.Errorf("expected 'program <entry>' directive, got %q", line)
	}
	prog := NewProgram(strings.TrimSpace(strings.TrimPrefix(line, "program ")))
	for {
		line, ok := ps.next()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, "func ") {
			return nil, fmt.Errorf("expected 'func', got %q", line)
		}
		if err := ps.function(prog, line); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// function parses one `func name(params) (rets) {` ... `}` body.
func (ps *parser) function(prog *Program, header string) error {
	rest := strings.TrimPrefix(header, "func ")
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return fmt.Errorf("malformed function header %q", header)
	}
	name := strings.TrimSpace(rest[:open])
	rest = rest[open+1:]
	close1 := strings.IndexByte(rest, ')')
	if close1 < 0 {
		return fmt.Errorf("unterminated parameter list in %q", header)
	}
	paramSrc := rest[:close1]
	rest = strings.TrimSpace(rest[close1+1:])

	var paramTypes []Type
	var paramRegs []Reg
	if strings.TrimSpace(paramSrc) != "" {
		for _, part := range strings.Split(paramSrc, ",") {
			fields := strings.Fields(part)
			if len(fields) != 2 {
				return fmt.Errorf("malformed parameter %q", part)
			}
			r, err := parseReg(fields[0])
			if err != nil {
				return err
			}
			ty, err := parseType(fields[1])
			if err != nil {
				return err
			}
			paramRegs = append(paramRegs, r)
			paramTypes = append(paramTypes, ty)
		}
	}

	var retTypes []Type
	if strings.HasPrefix(rest, "(") {
		close2 := strings.IndexByte(rest, ')')
		if close2 < 0 {
			return fmt.Errorf("unterminated return list in %q", header)
		}
		for _, part := range strings.Split(rest[1:close2], ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			ty, err := parseType(part)
			if err != nil {
				return err
			}
			retTypes = append(retTypes, ty)
		}
		rest = strings.TrimSpace(rest[close2+1:])
	}
	if rest != "{" {
		return fmt.Errorf("expected '{' at end of function header, got %q", rest)
	}

	f := prog.NewFunc(name, paramTypes, retTypes)
	// The builder allocated params as r0..rN-1; the textual form must
	// agree (Dump always emits them that way).
	for i, r := range paramRegs {
		if f.Params[i] != r {
			return fmt.Errorf("function %s: parameter %d named %s, expected %s", name, i, r, f.Params[i])
		}
	}

	var cur *Block
	maxReg := Reg(len(paramRegs)) - 1
	bump := func(r Reg) {
		if r > maxReg {
			maxReg = r
		}
	}
	for {
		line, ok := ps.next()
		if !ok {
			return fmt.Errorf("unterminated function %s", name)
		}
		if line == "}" {
			break
		}
		if idx := blockLabel(line); idx >= 0 {
			blockName := ""
			if c := strings.Index(line, ";"); c >= 0 {
				blockName = strings.TrimSpace(line[c+1:])
			}
			cur = f.NewBlock(blockName)
			if cur.Index != idx {
				return fmt.Errorf("block label b%d out of order (expected b%d)", idx, cur.Index)
			}
			continue
		}
		if cur == nil {
			return fmt.Errorf("instruction %q before any block label", line)
		}
		in, err := parseInstr(line)
		if err != nil {
			return fmt.Errorf("func %s: %w", name, err)
		}
		for _, r := range in.Uses(nil) {
			bump(r)
		}
		for _, r := range in.Defs(nil) {
			bump(r)
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	// Size the register file to cover every mentioned register.
	f.reserveRegs(int(maxReg) + 1)
	return nil
}

// blockLabel returns the block index of a `bN:` line, or -1.
func blockLabel(line string) int {
	if !strings.HasPrefix(line, "b") {
		return -1
	}
	colon := strings.IndexByte(line, ':')
	if colon < 1 {
		return -1
	}
	n, err := strconv.Atoi(line[1:colon])
	if err != nil {
		return -1
	}
	return n
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if s == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("malformed register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("malformed register %q", s)
	}
	return Reg(n), nil
}

func parseType(s string) (Type, error) {
	switch strings.TrimSpace(s) {
	case "i32":
		return I32, nil
	case "i64":
		return I64, nil
	case "f32":
		return F32, nil
	case "f64":
		return F64, nil
	}
	return 0, fmt.Errorf("unknown type %q", s)
}

func parseRegList(s string) ([]Reg, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Reg
	for _, part := range strings.Split(s, ",") {
		r, err := parseReg(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// parseAddr parses `[rA+OFF]` (OFF is a signed byte offset).
func parseAddr(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("malformed address %q", s)
	}
	body := s[1 : len(s)-1]
	plus := strings.IndexByte(body, '+')
	if plus < 0 {
		return 0, 0, fmt.Errorf("malformed address %q", s)
	}
	base, err := parseReg(body[:plus])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(body[plus+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed offset in %q", s)
	}
	return base, off, nil
}

// parseLUT parses `lutN`.
func parseLUT(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "lut") {
		return 0, fmt.Errorf("malformed LUT id %q", s)
	}
	n, err := strconv.Atoi(s[3:])
	if err != nil || n < 0 || n >= maxLUTs {
		return 0, fmt.Errorf("malformed LUT id %q", s)
	}
	return uint8(n), nil
}

// parseTrunc parses `nK`.
func parseTrunc(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "n") {
		return 0, fmt.Errorf("malformed truncation %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 64 {
		return 0, fmt.Errorf("malformed truncation %q", s)
	}
	return uint8(n), nil
}

// parseBlockRef parses `bN`.
func parseBlockRef(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "b") {
		return 0, fmt.Errorf("malformed block reference %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("malformed block reference %q", s)
	}
	return n, nil
}

// mnemonic table (reverse of opNames), built once.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// parseInstr parses one instruction line.
func parseInstr(line string) (Instr, error) {
	in := Instr{Dst: NoReg, A: NoReg, B: NoReg}

	// Split `lhs = rhs` if present (calls may have multiple lhs regs).
	lhs, rhs := "", line
	if eq := strings.Index(line, " = "); eq >= 0 {
		lhs, rhs = strings.TrimSpace(line[:eq]), strings.TrimSpace(line[eq+3:])
	}

	op, typeSuffix, rest := splitMnemonic(rhs)
	switch op {
	case "nop":
		in.Op = Nop
		return in, nil

	case "const":
		in.Op = Const
		ty, err := parseType(typeSuffix)
		if err != nil {
			return in, err
		}
		in.Type = ty
		dst, err := parseReg(lhs)
		if err != nil {
			return in, err
		}
		in.Dst = dst
		imm, err := parseLiteral(ty, rest)
		if err != nil {
			return in, err
		}
		in.Imm = imm
		return in, nil

	case "load", "ld_crc":
		ty, err := parseType(typeSuffix)
		if err != nil {
			return in, err
		}
		in.Type = ty
		dst, err := parseReg(lhs)
		if err != nil {
			return in, err
		}
		in.Dst = dst
		parts := splitArgs(rest)
		if op == "load" && len(parts) != 1 {
			return in, fmt.Errorf("load takes one operand: %q", line)
		}
		if op == "ld_crc" && len(parts) != 3 {
			return in, fmt.Errorf("ld_crc takes [addr], lut, n: %q", line)
		}
		base, off, err := parseAddr(parts[0])
		if err != nil {
			return in, err
		}
		in.A = base
		in.Imm = uint64(off)
		if op == "load" {
			in.Op = Load
			return in, nil
		}
		in.Op = LdCRC
		if in.LUT, err = parseLUT(parts[1]); err != nil {
			return in, err
		}
		if in.Trunc, err = parseTrunc(parts[2]); err != nil {
			return in, err
		}
		return in, nil

	case "store":
		in.Op = Store
		ty, err := parseType(typeSuffix)
		if err != nil {
			return in, err
		}
		in.Type = ty
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return in, fmt.Errorf("store takes [addr], src: %q", line)
		}
		base, off, err := parseAddr(parts[0])
		if err != nil {
			return in, err
		}
		in.A = base
		in.Imm = uint64(off)
		if in.B, err = parseReg(parts[1]); err != nil {
			return in, err
		}
		return in, nil

	case "jmp":
		in.Op = Jmp
		blk, err := parseBlockRef(rest)
		if err != nil {
			return in, err
		}
		in.Blk0 = blk
		return in, nil

	case "br":
		in.Op = Br
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return in, fmt.Errorf("br takes cond, bT, bF: %q", line)
		}
		var err error
		if in.A, err = parseReg(parts[0]); err != nil {
			return in, err
		}
		if in.Blk0, err = parseBlockRef(parts[1]); err != nil {
			return in, err
		}
		if in.Blk1, err = parseBlockRef(parts[2]); err != nil {
			return in, err
		}
		return in, nil

	case "ret":
		in.Op = Ret
		args, err := parseRegList(rest)
		if err != nil {
			return in, err
		}
		in.Args = args
		return in, nil

	case "call":
		in.Op = Call
		open := strings.IndexByte(rest, '(')
		if open < 0 || !strings.HasSuffix(rest, ")") {
			return in, fmt.Errorf("malformed call %q", line)
		}
		in.Callee = strings.TrimSpace(rest[:open])
		args, err := parseRegList(rest[open+1 : len(rest)-1])
		if err != nil {
			return in, err
		}
		in.Args = args
		rets, err := parseRegList(lhs)
		if err != nil {
			return in, err
		}
		in.Rets = rets
		return in, nil

	case "cvt":
		in.Op = Cvt
		// cvt.FROM.TO — typeSuffix holds "FROM.TO".
		tys := strings.SplitN(typeSuffix, ".", 2)
		if len(tys) != 2 {
			return in, fmt.Errorf("malformed cvt types %q", typeSuffix)
		}
		from, err := parseType(tys[0])
		if err != nil {
			return in, err
		}
		to, err := parseType(tys[1])
		if err != nil {
			return in, err
		}
		in.SrcType, in.Type = from, to
		if in.Dst, err = parseReg(lhs); err != nil {
			return in, err
		}
		if in.A, err = parseReg(rest); err != nil {
			return in, err
		}
		return in, nil

	case "reg_crc":
		in.Op = RegCRC
		ty, err := parseType(typeSuffix)
		if err != nil {
			return in, err
		}
		in.Type = ty
		parts := splitArgs(rest)
		if len(parts) != 3 {
			return in, fmt.Errorf("reg_crc takes src, lut, n: %q", line)
		}
		if in.A, err = parseReg(parts[0]); err != nil {
			return in, err
		}
		if in.LUT, err = parseLUT(parts[1]); err != nil {
			return in, err
		}
		if in.Trunc, err = parseTrunc(parts[2]); err != nil {
			return in, err
		}
		return in, nil

	case "lookup":
		in.Op = Lookup
		lut, err := parseLUT(rest)
		if err != nil {
			return in, err
		}
		in.LUT = lut
		regs, err := parseRegList(lhs)
		if err != nil {
			return in, err
		}
		if len(regs) != 2 {
			return in, fmt.Errorf("lookup defines data, hit: %q", line)
		}
		in.Dst, in.B = regs[0], regs[1]
		// The data register's type is not encoded; F32 covers 4-byte
		// reads and the raw register holds 8-byte data regardless.
		in.Type = F32
		return in, nil

	case "update":
		in.Op = Update
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return in, fmt.Errorf("update takes src, lut: %q", line)
		}
		var err error
		if in.A, err = parseReg(parts[0]); err != nil {
			return in, err
		}
		if in.LUT, err = parseLUT(parts[1]); err != nil {
			return in, err
		}
		in.Type = F32
		return in, nil

	case "invalidate":
		in.Op = Invalidate
		lut, err := parseLUT(rest)
		if err != nil {
			return in, err
		}
		in.LUT = lut
		return in, nil
	}

	// Generic unary/binary forms: `rD = OP.TYPE rA[, rB]`.
	opcode, ok := opByName[op]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", op)
	}
	ty, err := parseType(typeSuffix)
	if err != nil {
		return in, err
	}
	in.Op, in.Type = opcode, ty
	if in.Dst, err = parseReg(lhs); err != nil {
		return in, err
	}
	regs, err := parseRegList(rest)
	if err != nil {
		return in, err
	}
	switch {
	case opcode.IsBinary() && len(regs) == 2:
		in.A, in.B = regs[0], regs[1]
	case opcode.IsUnary() && len(regs) == 1:
		in.A = regs[0]
	default:
		return in, fmt.Errorf("wrong operand count for %s: %q", op, line)
	}
	return in, nil
}

// splitMnemonic splits "fadd.f32 r0, r1" into ("fadd", "f32", "r0, r1");
// mnemonics without a type suffix return it empty.
func splitMnemonic(s string) (op, typeSuffix, rest string) {
	s = strings.TrimSpace(s)
	sp := strings.IndexByte(s, ' ')
	head := s
	if sp >= 0 {
		head, rest = s[:sp], strings.TrimSpace(s[sp+1:])
	}
	if dot := strings.IndexByte(head, '.'); dot >= 0 {
		return head[:dot], head[dot+1:], rest
	}
	return head, "", rest
}

// splitArgs splits a comma-separated operand list, respecting brackets.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// parseLiteral parses a const literal at the given type into raw bits.
func parseLiteral(ty Type, s string) (uint64, error) {
	s = strings.TrimSpace(s)
	switch ty {
	case I32:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed i32 literal %q", s)
		}
		return uint64(uint32(int32(v))), nil
	case I64:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed i64 literal %q", s)
		}
		return uint64(v), nil
	case F32:
		v, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return 0, fmt.Errorf("malformed f32 literal %q", s)
		}
		return uint64(math.Float32bits(float32(v))), nil
	case F64:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed f64 literal %q", s)
		}
		return math.Float64bits(v), nil
	}
	return 0, fmt.Errorf("unknown literal type")
}
