package ir

import "fmt"

// Validate checks structural well-formedness of the program: every block
// terminated exactly once, branch targets in range, registers allocated,
// call signatures consistent, return arities matching, and memo LUT ids
// within the hardware's 3-bit space.
func (p *Program) Validate() error {
	if p.Entry != "" {
		if _, ok := p.Funcs[p.Entry]; !ok {
			return fmt.Errorf("ir: entry function %q not defined", p.Entry)
		}
	}
	for name, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", name, err)
		}
	}
	return nil
}

const maxLUTs = 8 // 3-bit LUT_ID field (§3.3)

func (p *Program) validateFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("has no blocks")
	}
	checkReg := func(r Reg, what string, in *Instr) error {
		if r == NoReg {
			return fmt.Errorf("%s: missing %s register", in, what)
		}
		if int(r) >= f.NumRegs() || r < 0 {
			return fmt.Errorf("%s: %s register %s out of range (file size %d)", in, what, r, f.NumRegs())
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block %d has stale index %d", bi, b.Index)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d (%s) is empty", bi, b.Name)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			// Bound the fields the interpreter uses as table indices
			// before anything (including error formatting) interprets
			// them: a hand-built or fuzzed instruction can hold any
			// byte here.
			if in.Op >= opCount {
				return fmt.Errorf("block b%d instr %d: op %d out of range", bi, ii, in.Op)
			}
			if in.Type > F64 {
				return fmt.Errorf("block b%d instr %d (%s): type %d out of range", bi, ii, in.Op, in.Type)
			}
			if in.Op == Cvt && in.SrcType > F64 {
				return fmt.Errorf("block b%d instr %d (%s): source type %d out of range", bi, ii, in.Op, in.SrcType)
			}
			last := ii == len(b.Instrs)-1
			if in.Op.IsBranch() != last {
				if last {
					return fmt.Errorf("block b%d not terminated (ends with %s)", bi, in.Op)
				}
				return fmt.Errorf("block b%d has mid-block terminator %s at %d", bi, in.Op, ii)
			}
			switch in.Op {
			case Jmp:
				if in.Blk0 < 0 || in.Blk0 >= len(f.Blocks) {
					return fmt.Errorf("jmp target b%d out of range", in.Blk0)
				}
			case Br:
				if in.Blk0 < 0 || in.Blk0 >= len(f.Blocks) || in.Blk1 < 0 || in.Blk1 >= len(f.Blocks) {
					return fmt.Errorf("br targets b%d/b%d out of range", in.Blk0, in.Blk1)
				}
				if err := checkReg(in.A, "condition", in); err != nil {
					return err
				}
			case Ret:
				if len(in.Args) != len(f.RetTypes) {
					return fmt.Errorf("ret has %d values, function declares %d", len(in.Args), len(f.RetTypes))
				}
				for _, r := range in.Args {
					if err := checkReg(r, "return", in); err != nil {
						return err
					}
				}
			case Call:
				callee, ok := p.Funcs[in.Callee]
				if !ok {
					return fmt.Errorf("call to undefined function %q", in.Callee)
				}
				if len(in.Args) != len(callee.ParamTypes) {
					return fmt.Errorf("call %s: %d args, callee takes %d", in.Callee, len(in.Args), len(callee.ParamTypes))
				}
				if len(in.Rets) != len(callee.RetTypes) {
					return fmt.Errorf("call %s: %d results, callee returns %d", in.Callee, len(in.Rets), len(callee.RetTypes))
				}
				for _, r := range append(append([]Reg{}, in.Args...), in.Rets...) {
					if err := checkReg(r, "call", in); err != nil {
						return err
					}
				}
			default:
				if in.Op.HasDst() {
					if err := checkReg(in.Dst, "destination", in); err != nil {
						return err
					}
				}
				if in.Op.IsUnary() || in.Op.IsBinary() {
					if err := checkReg(in.A, "operand A", in); err != nil {
						return err
					}
				}
				if in.Op.IsBinary() {
					if err := checkReg(in.B, "operand B", in); err != nil {
						return err
					}
				}
				if in.Op == Lookup {
					if err := checkReg(in.B, "hit flag", in); err != nil {
						return err
					}
				}
			}
			if in.Op.IsMemo() && int(in.LUT) >= maxLUTs {
				return fmt.Errorf("%s: LUT id %d exceeds %d logical LUTs", in, in.LUT, maxLUTs)
			}
			if (in.Op == LdCRC || in.Op == RegCRC) && int(in.Trunc) > in.Type.Size()*8 {
				return fmt.Errorf("%s: truncating %d bits of a %d-bit value", in, in.Trunc, in.Type.Size()*8)
			}
		}
	}
	return nil
}
