// Package ir defines the register-based intermediate representation that
// this reproduction uses in place of ARM-v8a machine code and LLVM IR.
// Workload kernels are built as IR functions; the timing simulator
// (internal/cpu) executes them, the tracer (internal/trace) records their
// dynamic instruction stream, and the compiler (internal/compiler)
// rewrites them into AxMemo's lookup/compute/update branch structure
// (ISCA'19 Fig. 1).
//
// The IR is deliberately small: a load/store machine with an unlimited
// virtual register file, typed arithmetic, the math intrinsics the
// AxBench/Rodinia kernels need, calls, and the five AxMemo ISA extensions
// (ld_crc, reg_crc, lookup, update, invalidate — §4 of the paper).
package ir

import "fmt"

// Type is the scalar type of a register value or memory element.
type Type uint8

// Scalar types.  Register values are stored as raw uint64 bit patterns and
// interpreted per instruction type.
const (
	I32 Type = iota
	I64
	F32
	F64
)

// Size returns the in-memory size of the type in bytes.
func (t Type) Size() int {
	switch t {
	case I32, F32:
		return 4
	case I64, F64:
		return 8
	}
	panic(fmt.Sprintf("ir: invalid type %d", t))
}

// IsFloat reports whether the type is a floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// String returns the assembly name of the type.
func (t Type) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Reg names a virtual register within a function.  Register 0 is valid.
type Reg int32

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = -1

// String returns the assembly name of the register.
func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int32(r))
}
