package ir

import (
	"strings"
	"testing"
)

// buildAddFunc builds: func add(a, b f32) f32 { return a + b }
func buildAddFunc(p *Program) *Function {
	f := p.NewFunc("add", []Type{F32, F32}, []Type{F32})
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	sum := bu.Bin(FAdd, F32, f.Params[0], f.Params[1])
	bu.Ret(sum)
	return f
}

func TestTypeSizes(t *testing.T) {
	cases := map[Type]int{I32: 4, F32: 4, I64: 8, F64: 8}
	for ty, want := range cases {
		if got := ty.Size(); got != want {
			t.Errorf("%s.Size() = %d, want %d", ty, got, want)
		}
	}
	if !F32.IsFloat() || !F64.IsFloat() || I32.IsFloat() || I64.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
}

func TestOpClassification(t *testing.T) {
	for _, o := range []Op{LdCRC, RegCRC, Lookup, Update, Invalidate} {
		if !o.IsMemo() {
			t.Errorf("%s not classified as memo", o)
		}
	}
	if Add.IsMemo() {
		t.Error("add classified as memo")
	}
	for _, o := range []Op{Jmp, Br, Ret} {
		if !o.IsBranch() {
			t.Errorf("%s not classified as branch", o)
		}
	}
	if Store.HasDst() || Update.HasDst() {
		t.Error("store/update claim a destination")
	}
	if !Lookup.HasDst() || !Load.HasDst() {
		t.Error("lookup/load lack a destination")
	}
}

func TestBuilderAllocatesRegisters(t *testing.T) {
	p := NewProgram("add")
	f := buildAddFunc(p)
	// 2 params + 1 result register.
	if f.NumRegs() != 3 {
		t.Errorf("NumRegs = %d, want 3", f.NumRegs())
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
}

func TestFinalizeAssignsUniqueSIDs(t *testing.T) {
	p := NewProgram("add")
	buildAddFunc(p)
	g := p.NewFunc("twice", []Type{F32}, []Type{F32})
	bb := g.NewBlock("entry")
	bu := At(g, bb)
	r := bu.Call("add", 1, g.Params[0], g.Params[0])
	bu.Ret(r[0])
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if seen[in.SID] {
					t.Fatalf("duplicate SID %d", in.SID)
				}
				seen[in.SID] = true
			}
		}
	}
	if len(seen) != 4 {
		t.Errorf("got %d SIDs, want 4", len(seen))
	}
}

func TestValidateCatchesEmptyFunction(t *testing.T) {
	p := NewProgram("f")
	p.NewFunc("f", nil, nil)
	if err := p.Validate(); err == nil {
		t.Error("function with no blocks validated")
	}
}

func TestValidateCatchesUnterminatedBlock(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, nil)
	bb := f.NewBlock("entry")
	At(f, bb).ConstI32(1)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Errorf("unterminated block: err = %v", err)
	}
}

func TestValidateCatchesMidBlockTerminator(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	bu.Ret()
	bu.ConstI32(1)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Errorf("mid-block terminator: err = %v", err)
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, nil)
	bb := f.NewBlock("entry")
	bb.Instrs = append(bb.Instrs, Instr{Op: Jmp, Blk0: 5, Dst: NoReg, A: NoReg, B: NoReg})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad jmp target: err = %v", err)
	}
}

func TestValidateCatchesUndefinedCallee(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	bu.Call("missing", 0)
	bu.Ret()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("undefined callee: err = %v", err)
	}
}

func TestValidateCatchesArityMismatch(t *testing.T) {
	p := NewProgram("g")
	buildAddFunc(p)
	g := p.NewFunc("g", []Type{F32}, nil)
	bb := g.NewBlock("entry")
	bu := At(g, bb)
	bu.Call("add", 1, g.Params[0]) // add takes two args
	bu.Ret()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity mismatch: err = %v", err)
	}
}

func TestValidateCatchesRetMismatch(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, []Type{F32})
	bb := f.NewBlock("entry")
	At(f, bb).Ret() // returns nothing, declares one
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ret has") {
		t.Errorf("ret mismatch: err = %v", err)
	}
}

func TestValidateCatchesLUTIDOverflow(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", []Type{F32}, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	bu.RegCRC(F32, f.Params[0], 9, 0) // only 8 logical LUTs exist
	bu.Ret()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "LUT id") {
		t.Errorf("LUT id overflow: err = %v", err)
	}
}

func TestValidateCatchesOverTruncation(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", []Type{F32}, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	bu.RegCRC(F32, f.Params[0], 0, 40) // 40 > 32 bits
	bu.Ret()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "truncating") {
		t.Errorf("over-truncation: err = %v", err)
	}
}

func TestValidateCatchesEntryMissing(t *testing.T) {
	p := NewProgram("nope")
	buildAddFunc(p)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "entry function") {
		t.Errorf("missing entry: err = %v", err)
	}
}

func TestUsesDefs(t *testing.T) {
	in := Instr{Op: Store, Type: F32, A: 1, B: 2, Dst: NoReg}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("store uses = %v, want [r1 r2]", uses)
	}
	if defs := in.Defs(nil); len(defs) != 0 {
		t.Errorf("store defs = %v, want none", defs)
	}

	lk := Instr{Op: Lookup, Type: F32, Dst: 3, B: 4, A: NoReg}
	defs := lk.Defs(nil)
	if len(defs) != 2 || defs[0] != 3 || defs[1] != 4 {
		t.Errorf("lookup defs = %v, want [r3 r4]", defs)
	}
	if uses := lk.Uses(nil); len(uses) != 0 {
		t.Errorf("lookup uses = %v, want none", uses)
	}

	br := Instr{Op: Br, A: 7, Dst: NoReg, B: NoReg}
	if uses := br.Uses(nil); len(uses) != 1 || uses[0] != 7 {
		t.Errorf("br uses = %v, want [r7]", uses)
	}

	call := Instr{Op: Call, Args: []Reg{1, 2}, Rets: []Reg{3}, Dst: NoReg}
	if uses := call.Uses(nil); len(uses) != 2 {
		t.Errorf("call uses = %v", uses)
	}
	if defs := call.Defs(nil); len(defs) != 1 || defs[0] != 3 {
		t.Errorf("call defs = %v", defs)
	}
}

func TestDisassembleRoundTripMentions(t *testing.T) {
	p := NewProgram("k")
	f := p.NewFunc("k", []Type{F32}, []Type{F32})
	entry := f.NewBlock("entry")
	hitB := f.NewBlock("hit")
	missB := f.NewBlock("miss")
	bu := At(f, entry)
	bu.RegCRC(F32, f.Params[0], 2, 8)
	data, hit := bu.Lookup(F32, 2)
	bu.Br(hit, hitB, missB)
	bu.SetBlock(hitB).Ret(data)
	bu.SetBlock(missB)
	r := bu.Un(Sqrt, F32, f.Params[0])
	bu.Update(F32, r, 2)
	bu.Ret(r)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	asm := f.Disassemble()
	for _, want := range []string{"reg_crc.f32", "lookup lut2", "br ", "update", "sqrt.f32", "n8"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Const, Type: I32, Dst: 1, Imm: 42}, "r1 = const.i32 42"},
		{Instr{Op: Load, Type: F64, Dst: 2, A: 0, Imm: 16}, "r2 = load.f64 [r0+16]"},
		{Instr{Op: Jmp, Blk0: 3}, "jmp b3"},
		{Instr{Op: Invalidate, LUT: 5}, "invalidate lut5"},
		{Instr{Op: Cvt, Type: F64, SrcType: I32, Dst: 4, A: 3}, "r4 = cvt.i32.f64 r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTerminator(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", nil, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	bu.ConstI32(0)
	if bb.Terminator() != nil {
		t.Error("unterminated block reports a terminator")
	}
	bu.Ret()
	if term := bb.Terminator(); term == nil || term.Op != Ret {
		t.Error("terminator not found")
	}
}

func TestMovToReusesRegister(t *testing.T) {
	p := NewProgram("f")
	f := p.NewFunc("f", []Type{I32}, nil)
	bb := f.NewBlock("entry")
	bu := At(f, bb)
	i := bu.ConstI32(0)
	next := bu.Bin(Add, I32, i, f.Params[0])
	bu.MovTo(I32, i, next)
	bu.Ret()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The MovTo must target i, not a fresh register.
	mov := bb.Instrs[2]
	if mov.Op != Mov || mov.Dst != i {
		t.Errorf("MovTo emitted %s", mov.String())
	}
}

func TestSortedFuncNamesDeterministic(t *testing.T) {
	p := NewProgram("a")
	for _, n := range []string{"zeta", "a", "mid"} {
		f := p.NewFunc(n, nil, nil)
		At(f, f.NewBlock("entry")).Ret()
	}
	names := p.sortedFuncNames()
	want := []string{"a", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted names = %v, want %v", names, want)
		}
	}
}
