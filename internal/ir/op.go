package ir

// Op is an IR opcode.
type Op uint8

// Opcodes, grouped by execution class.  The class determines the latency
// and the functional unit in the timing model (internal/cpu) and the
// vertex weight in the DDDG (internal/dddg).
const (
	Nop Op = iota

	// Data movement.
	Const // Dst = Imm (raw bits of Type)
	Mov   // Dst = A

	// Integer arithmetic/logic (Type selects i32/i64).
	Add
	Sub
	Mul
	SDiv
	SRem
	And
	Or
	Xor
	Shl
	Shr

	// Floating-point arithmetic (Type selects f32/f64).
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FAbs
	FMin
	FMax

	// Math intrinsics (modeled as long-latency FPU sequences, as the
	// benchmark kernels call libm).
	Sqrt
	Exp
	Log
	Sin
	Cos
	Tan
	Asin
	Acos
	Atan
	Atan2 // Dst = atan2(A, B)
	Pow   // Dst = A**B
	Floor

	// Comparisons: Dst (i32) = A <op> B ? 1 : 0, comparing at Type.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Conversion: Dst(Type) = convert(A at SrcType).
	Cvt

	// Memory: address = A + Imm (byte offset); element of Type.
	Load  // Dst = mem[A+Imm]
	Store // mem[A+Imm] = B

	// Control flow.
	Jmp  // goto Blk0
	Br   // if A != 0 goto Blk0 else Blk1
	Ret  // return Args...
	Call // Rets... = Callee(Args...)

	// AxMemo ISA extensions (§4).  LUT selects the logical lookup
	// table; Trunc is the per-input number of truncated LSBs.
	LdCRC      // Dst = mem[A+Imm]; feed truncate(Dst, Trunc) to LUT's CRC
	RegCRC     // feed truncate(A, Trunc) to LUT's CRC
	Lookup     // Dst = LUT data on hit; CondReg(B) = hit?1:0
	Update     // insert A as LUT data for the pending entry
	Invalidate // clear all entries of LUT

	opCount // sentinel
)

var opNames = [...]string{
	Nop: "nop", Const: "const", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", SDiv: "sdiv", SRem: "srem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FNeg: "fneg", FAbs: "fabs", FMin: "fmin", FMax: "fmax",
	Sqrt: "sqrt", Exp: "exp", Log: "log", Sin: "sin", Cos: "cos",
	Tan: "tan", Asin: "asin", Acos: "acos", Atan: "atan",
	Atan2: "atan2", Pow: "pow", Floor: "floor",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt",
	CmpLE: "cmple", CmpGT: "cmpgt", CmpGE: "cmpge",
	Cvt: "cvt", Load: "load", Store: "store",
	Jmp: "jmp", Br: "br", Ret: "ret", Call: "call",
	LdCRC: "ld_crc", RegCRC: "reg_crc", Lookup: "lookup",
	Update: "update", Invalidate: "invalidate",
}

// String returns the assembly mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsMemo reports whether the opcode is one of the five AxMemo ISA
// extensions.
func (o Op) IsMemo() bool {
	return o == LdCRC || o == RegCRC || o == Lookup || o == Update || o == Invalidate
}

// IsBranch reports whether the opcode ends a basic block.
func (o Op) IsBranch() bool {
	return o == Jmp || o == Br || o == Ret
}

// HasDst reports whether the opcode writes a destination register.
func (o Op) HasDst() bool {
	switch o {
	case Nop, Store, Jmp, Br, Ret, Call, RegCRC, Update, Invalidate:
		return false
	}
	return true
}

// IsUnary reports whether the opcode reads only operand A.
func (o Op) IsUnary() bool {
	switch o {
	case Mov, FNeg, FAbs, Sqrt, Exp, Log, Sin, Cos, Tan,
		Asin, Acos, Atan, Floor, Cvt, Load, LdCRC, RegCRC, Update:
		return true
	}
	return false
}

// IsBinary reports whether the opcode reads operands A and B.
func (o Op) IsBinary() bool {
	switch o {
	case Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, Shr,
		FAdd, FSub, FMul, FDiv, FMin, FMax, Atan2, Pow,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, Store:
		return true
	}
	return false
}
