package ir

import (
	"strings"
	"testing"
)

// FuzzParse: the textual-IR parser must never panic, and anything it
// accepts must re-dump and re-parse to a fixed point.
func FuzzParse(f *testing.F) {
	f.Add("program main\n\nfunc main(r0 f32) (f32) {\nb0: ; entry\n\tr1 = fmul.f32 r0, r0\n\tret r1\n}\n")
	f.Add(buildRich().Dump())
	f.Add("program x\nfunc x() {\nb0: ;\n\tjmp b0\n}\n")
	f.Add("garbage")
	f.Add("program p\nfunc f(r0 i64) {\nb0: ;\n\tr1 = ld_crc.f32 [r0+-4], lut2, n6\n\tret\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := p.Dump()
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\n%s", err, text)
		}
		if again := p2.Dump(); again != text {
			t.Fatalf("dump not a fixed point:\n%s\nvs\n%s", text, again)
		}
		_ = strings.Count(text, "\n")
	})
}
