package ir

import "math"

// Builder emits instructions into a block, allocating destination
// registers from the owning function.  It is the construction API used by
// the workload kernels and the compiler transformation.
type Builder struct {
	F *Function
	B *Block
}

// At returns a builder positioned at block b of function f.
func At(f *Function, b *Block) *Builder { return &Builder{F: f, B: b} }

// SetBlock repositions the builder.
func (bu *Builder) SetBlock(b *Block) *Builder {
	bu.B = b
	return bu
}

func (bu *Builder) emit(in Instr) Reg {
	if in.Op.HasDst() && in.Dst == NoReg {
		in.Dst = bu.F.NewReg()
	}
	bu.B.Instrs = append(bu.B.Instrs, in)
	return in.Dst
}

// ConstF32 materializes a float32 constant.
func (bu *Builder) ConstF32(v float32) Reg {
	return bu.emit(Instr{Op: Const, Type: F32, Dst: NoReg, A: NoReg, B: NoReg, Imm: uint64(math.Float32bits(v))})
}

// ConstF64 materializes a float64 constant.
func (bu *Builder) ConstF64(v float64) Reg {
	return bu.emit(Instr{Op: Const, Type: F64, Dst: NoReg, A: NoReg, B: NoReg, Imm: math.Float64bits(v)})
}

// ConstI32 materializes an int32 constant.
func (bu *Builder) ConstI32(v int32) Reg {
	return bu.emit(Instr{Op: Const, Type: I32, Dst: NoReg, A: NoReg, B: NoReg, Imm: uint64(uint32(v))})
}

// ConstI64 materializes an int64 constant.
func (bu *Builder) ConstI64(v int64) Reg {
	return bu.emit(Instr{Op: Const, Type: I64, Dst: NoReg, A: NoReg, B: NoReg, Imm: uint64(v)})
}

// Mov copies a register.
func (bu *Builder) Mov(t Type, a Reg) Reg {
	return bu.emit(Instr{Op: Mov, Type: t, Dst: NoReg, A: a, B: NoReg})
}

// MovTo copies a into an existing destination register (used to carry
// loop variables across blocks without SSA form).
func (bu *Builder) MovTo(t Type, dst, a Reg) {
	bu.emit(Instr{Op: Mov, Type: t, Dst: dst, A: a, B: NoReg})
}

// Bin emits a two-operand arithmetic/logic/compare instruction.
func (bu *Builder) Bin(op Op, t Type, a, b Reg) Reg {
	return bu.emit(Instr{Op: op, Type: t, Dst: NoReg, A: a, B: b})
}

// Un emits a one-operand arithmetic instruction or math intrinsic.
func (bu *Builder) Un(op Op, t Type, a Reg) Reg {
	return bu.emit(Instr{Op: op, Type: t, Dst: NoReg, A: a, B: NoReg})
}

// Cvt converts a from type `from` to type `to`.
func (bu *Builder) Cvt(from, to Type, a Reg) Reg {
	return bu.emit(Instr{Op: Cvt, Type: to, SrcType: from, Dst: NoReg, A: a, B: NoReg})
}

// Load reads an element of type t at [base+off].
func (bu *Builder) Load(t Type, base Reg, off int64) Reg {
	return bu.emit(Instr{Op: Load, Type: t, Dst: NoReg, A: base, B: NoReg, Imm: uint64(off)})
}

// Store writes register v of type t to [base+off].
func (bu *Builder) Store(t Type, base Reg, off int64, v Reg) {
	bu.emit(Instr{Op: Store, Type: t, Dst: NoReg, A: base, B: v, Imm: uint64(off)})
}

// Jmp ends the block with an unconditional jump.
func (bu *Builder) Jmp(target *Block) {
	bu.emit(Instr{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg, Blk0: target.Index})
}

// Br ends the block with a conditional branch: cond != 0 → ifTrue.
func (bu *Builder) Br(cond Reg, ifTrue, ifFalse *Block) {
	bu.emit(Instr{Op: Br, Dst: NoReg, A: cond, B: NoReg, Blk0: ifTrue.Index, Blk1: ifFalse.Index})
}

// Ret ends the block returning vals.
func (bu *Builder) Ret(vals ...Reg) {
	bu.emit(Instr{Op: Ret, Dst: NoReg, A: NoReg, B: NoReg, Args: vals})
}

// Call invokes callee with args and returns nRets fresh result registers.
func (bu *Builder) Call(callee string, nRets int, args ...Reg) []Reg {
	rets := make([]Reg, nRets)
	for i := range rets {
		rets[i] = bu.F.NewReg()
	}
	bu.emit(Instr{Op: Call, Dst: NoReg, A: NoReg, B: NoReg, Callee: callee, Args: args, Rets: rets})
	return rets
}

// LdCRC loads an element and feeds its truncated value to lut's CRC unit
// (the paper's ld_crc dst, [addr], LUT_ID, n).
func (bu *Builder) LdCRC(t Type, base Reg, off int64, lut uint8, trunc uint8) Reg {
	return bu.emit(Instr{Op: LdCRC, Type: t, Dst: NoReg, A: base, B: NoReg, Imm: uint64(off), LUT: lut, Trunc: trunc})
}

// RegCRC feeds a register's truncated value to lut's CRC unit (reg_crc
// src, LUT_ID, n).
func (bu *Builder) RegCRC(t Type, src Reg, lut uint8, trunc uint8) {
	bu.emit(Instr{Op: RegCRC, Type: t, Dst: NoReg, A: src, B: NoReg, LUT: lut, Trunc: trunc})
}

// Lookup queries lut; it returns the data register and the hit-flag
// register (lookup dst, LUT_ID plus the condition code of §4).
func (bu *Builder) Lookup(t Type, lut uint8) (data, hit Reg) {
	hit = bu.F.NewReg()
	data = bu.emit(Instr{Op: Lookup, Type: t, Dst: NoReg, B: hit, A: NoReg, LUT: lut})
	return data, hit
}

// Update inserts src as the data of the pending lut entry (update src,
// LUT_ID).
func (bu *Builder) Update(t Type, src Reg, lut uint8) {
	bu.emit(Instr{Op: Update, Type: t, Dst: NoReg, A: src, B: NoReg, LUT: lut})
}

// Invalidate clears every entry of lut (invalidate LUT_ID).
func (bu *Builder) Invalidate(lut uint8) {
	bu.emit(Instr{Op: Invalidate, Dst: NoReg, A: NoReg, B: NoReg, LUT: lut})
}
