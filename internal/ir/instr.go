package ir

import (
	"fmt"
	"math"
	"strings"
)

// Instr is one IR instruction.  Fields are used per opcode as documented
// on the Op constants.
type Instr struct {
	Op      Op
	Type    Type // operand/result type
	SrcType Type // Cvt source type
	Dst     Reg
	A, B    Reg
	Imm     uint64 // Const raw bits, or Load/Store/LdCRC byte offset
	Blk0    int    // Jmp/Br target
	Blk1    int    // Br fall-through target
	Callee  string // Call target
	Args    []Reg  // Call arguments / Ret values
	Rets    []Reg  // Call result registers
	LUT     uint8  // memo LUT id (3-bit in hardware; ≤ 8 logical LUTs)
	Trunc   uint8  // truncated LSBs for LdCRC/RegCRC
	SID     int    // static instruction id, program-unique (assigned by Program.Finalize)
	Aux     bool   // instruction inserted by the AxMemo compiler transformation
	// (e.g. the hit-test branch); counted as a "memoization
	// instruction" in the Fig. 8 breakdown

}

// Uses appends the registers the instruction reads to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch {
	case in.Op == Br:
		dst = append(dst, in.A)
	case in.Op == Ret, in.Op == Call:
		dst = append(dst, in.Args...)
	case in.Op.IsUnary():
		dst = append(dst, in.A)
	case in.Op.IsBinary():
		dst = append(dst, in.A, in.B)
	}
	if in.Op == Store || in.Op == LdCRC || in.Op == Load {
		// A is the address base, already appended above for unary
		// Load/LdCRC; Store appends base A and value B above.
	}
	return dst
}

// Defs appends the registers the instruction writes to dst and returns it.
func (in *Instr) Defs(dst []Reg) []Reg {
	if in.Op.HasDst() && in.Dst != NoReg {
		dst = append(dst, in.Dst)
	}
	if in.Op == Lookup && in.B != NoReg {
		dst = append(dst, in.B) // hit-flag condition register
	}
	if in.Op == Call {
		dst = append(dst, in.Rets...)
	}
	return dst
}

// String renders the instruction in assembly-like form.
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case Const:
		var lit string
		switch in.Type {
		case F32:
			lit = fmt.Sprintf("%g", math.Float32frombits(uint32(in.Imm)))
		case F64:
			lit = fmt.Sprintf("%g", math.Float64frombits(in.Imm))
		case I64:
			lit = fmt.Sprintf("%d", int64(in.Imm))
		default:
			lit = fmt.Sprintf("%d", int32(uint32(in.Imm)))
		}
		fmt.Fprintf(&b, "%s = const.%s %s", in.Dst, in.Type, lit)
	case Load:
		fmt.Fprintf(&b, "%s = load.%s [%s+%d]", in.Dst, in.Type, in.A, int64(in.Imm))
	case Store:
		fmt.Fprintf(&b, "store.%s [%s+%d], %s", in.Type, in.A, int64(in.Imm), in.B)
	case Jmp:
		fmt.Fprintf(&b, "jmp b%d", in.Blk0)
	case Br:
		fmt.Fprintf(&b, "br %s, b%d, b%d", in.A, in.Blk0, in.Blk1)
	case Ret:
		if len(in.Args) == 0 {
			b.WriteString("ret")
		} else {
			fmt.Fprintf(&b, "ret %s", regList(in.Args))
		}
	case Call:
		if len(in.Rets) == 0 {
			fmt.Fprintf(&b, "call %s(%s)", in.Callee, regList(in.Args))
		} else {
			fmt.Fprintf(&b, "%s = call %s(%s)", regList(in.Rets), in.Callee, regList(in.Args))
		}
	case Cvt:
		fmt.Fprintf(&b, "%s = cvt.%s.%s %s", in.Dst, in.SrcType, in.Type, in.A)
	case LdCRC:
		fmt.Fprintf(&b, "%s = ld_crc.%s [%s+%d], lut%d, n%d", in.Dst, in.Type, in.A, int64(in.Imm), in.LUT, in.Trunc)
	case RegCRC:
		fmt.Fprintf(&b, "reg_crc.%s %s, lut%d, n%d", in.Type, in.A, in.LUT, in.Trunc)
	case Lookup:
		fmt.Fprintf(&b, "%s, %s = lookup lut%d", in.Dst, in.B, in.LUT)
	case Update:
		fmt.Fprintf(&b, "update %s, lut%d", in.A, in.LUT)
	case Invalidate:
		fmt.Fprintf(&b, "invalidate lut%d", in.LUT)
	default:
		if in.Op.IsBinary() {
			fmt.Fprintf(&b, "%s = %s.%s %s, %s", in.Dst, in.Op, in.Type, in.A, in.B)
		} else if in.Op.IsUnary() {
			fmt.Fprintf(&b, "%s = %s.%s %s", in.Dst, in.Op, in.Type, in.A)
		} else {
			fmt.Fprintf(&b, "%s", in.Op)
		}
	}
	return b.String()
}

func regList(rs []Reg) string {
	if len(rs) == 0 {
		return ""
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

// Block is a basic block: a straight-line instruction sequence ended by a
// branch (Jmp/Br/Ret).
type Block struct {
	Name   string
	Index  int
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsBranch() {
		return &b.Instrs[n-1]
	}
	return nil
}

// Function is a single-entry IR function.
type Function struct {
	Name       string
	Params     []Reg
	ParamTypes []Type
	RetTypes   []Type
	Blocks     []*Block
	nextReg    Reg
}

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	return r
}

// NumRegs returns the size of the virtual register file.
func (f *Function) NumRegs() int { return int(f.nextReg) }

// reserveRegs grows the register file to at least n registers (used by
// the textual-IR parser, which learns the file size from the register
// names it sees).
func (f *Function) reserveRegs(n int) {
	if Reg(n) > f.nextReg {
		f.nextReg = Reg(n)
	}
}

// NewBlock appends an empty basic block and returns it.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// InstrCount returns the number of static instructions in the function.
func (f *Function) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Disassemble renders the whole function in the textual IR format that
// ir.Parse reads back (see asm.go).
func (f *Function) Disassemble() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s", p, f.ParamTypes[i])
	}
	rets := make([]string, len(f.RetTypes))
	for i, rt := range f.RetTypes {
		rets[i] = rt.String()
	}
	fmt.Fprintf(&sb, "func %s(%s)", f.Name, strings.Join(params, ", "))
	if len(rets) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(rets, ", "))
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d: ; %s\n", b.Index, b.Name)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Dump renders the whole program in the textual IR format, functions in
// deterministic order, with the entry directive first.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Entry)
	for _, name := range p.sortedFuncNames() {
		sb.WriteByte('\n')
		sb.WriteString(p.Funcs[name].Disassemble())
	}
	return sb.String()
}

// Program is a set of functions with a designated entry point.
type Program struct {
	Funcs map[string]*Function
	Entry string
}

// NewProgram returns an empty program.
func NewProgram(entry string) *Program {
	return &Program{Funcs: make(map[string]*Function), Entry: entry}
}

// NewFunc creates, registers and returns a function.  Parameter registers
// are pre-allocated in declaration order.
func (p *Program) NewFunc(name string, paramTypes []Type, retTypes []Type) *Function {
	f := &Function{Name: name, ParamTypes: paramTypes, RetTypes: retTypes}
	for range paramTypes {
		f.Params = append(f.Params, f.NewReg())
	}
	p.Funcs[name] = f
	return f
}

// EntryFunc returns the entry function, or nil if missing.
func (p *Program) EntryFunc() *Function { return p.Funcs[p.Entry] }

// Finalize assigns program-unique static instruction IDs (SIDs) in a
// deterministic order and validates the program.  It must be called after
// construction and after any compiler transformation.
func (p *Program) Finalize() error {
	sid := 0
	for _, name := range p.sortedFuncNames() {
		f := p.Funcs[name]
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				b.Instrs[i].SID = sid
				sid++
			}
		}
	}
	return p.Validate()
}

func (p *Program) sortedFuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	// Insertion sort keeps this dependency-free and the function count
	// small.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
