package bytecode

import (
	"fmt"
	"sort"
	"strings"

	"axmemo/internal/ir"
)

// Disassemble renders the compiled program as a human-readable listing,
// functions in name order (entry first).
func (p *Program) Disassemble() string {
	var sb strings.Builder
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		if p.Entry != nil && name == p.Entry.IR.Name {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if p.Entry != nil {
		names = append([]string{p.Entry.IR.Name}, names...)
	}
	for i, name := range names {
		if i > 0 {
			sb.WriteByte('\n')
		}
		p.Funcs[name].disasm(&sb)
	}
	return sb.String()
}

// Disassemble renders one compiled function.
func (f *Func) disasm(sb *strings.Builder) {
	fmt.Fprintf(sb, "func %s: %d insns, %d blocks, %d regs\n",
		f.IR.Name, len(f.Insns), len(f.BlockPC), f.IR.NumRegs())
	// blockAt maps a pc to the source block starting there (labels).
	blockAt := make(map[int32]int, len(f.BlockPC))
	for idx, pc := range f.BlockPC {
		blockAt[pc] = idx
	}
	for pc := range f.Insns {
		if idx, ok := blockAt[int32(pc)]; ok {
			fmt.Fprintf(sb, "  b%d:\n", idx)
		}
		bi := &f.Insns[pc]
		fmt.Fprintf(sb, "  %4d  %-14s %-26s ; ir=%s\n",
			pc, bi.Op.String(), bi.operands(), bi.irRef())
	}
}

// operands renders the instruction's meaningful operand fields.
func (bi *Insn) operands() string {
	switch {
	case bi.Op == Nop:
		return ""
	case bi.Op == Const:
		return fmt.Sprintf("r%d, %#x", bi.Dst, bi.Imm)
	case bi.Op == Mov:
		return fmt.Sprintf("r%d, r%d", bi.Dst, bi.A)
	case bi.Op >= FirstBin && bi.Op <= LastBin:
		return fmt.Sprintf("r%d, r%d, r%d", bi.Dst, bi.A, bi.B)
	case bi.Op >= FirstUn && bi.Op <= LastUn, bi.Op >= FirstCvt && bi.Op <= LastCvt:
		return fmt.Sprintf("r%d, r%d", bi.Dst, bi.A)
	case bi.Op == Load:
		return fmt.Sprintf("r%d, [r%d+%d].%s", bi.Dst, bi.A, bi.Imm, bi.Type)
	case bi.Op == Store:
		return fmt.Sprintf("[r%d+%d].%s, r%d", bi.A, bi.Imm, bi.Type, bi.B)
	case bi.Op == Jmp:
		return fmt.Sprintf("@%d", bi.T0)
	case bi.Op == Br:
		return fmt.Sprintf("r%d, @%d, @%d%s", bi.A, bi.T0, bi.T1, backwardSuffix(bi))
	case bi.Op == Ret:
		return regList(bi.Args)
	case bi.Op == Call:
		return fmt.Sprintf("%s = %s(%s)", regList(bi.Rets), bi.Callee.IR.Name, regList(bi.Args))
	case bi.Op == LdCRC:
		return fmt.Sprintf("r%d, [r%d+%d].%s, lut%d, trunc%d", bi.Dst, bi.A, bi.Imm, bi.Type, bi.LUT, bi.Trunc)
	case bi.Op == RegCRC:
		return fmt.Sprintf("r%d.%s, lut%d, trunc%d", bi.A, bi.Type, bi.LUT, bi.Trunc)
	case bi.Op == Lookup:
		return fmt.Sprintf("r%d, r%d, lut%d", bi.Dst, bi.B, bi.LUT)
	case bi.Op == Update:
		return fmt.Sprintf("r%d, lut%d", bi.A, bi.LUT)
	case bi.Op == Invalidate:
		return fmt.Sprintf("lut%d", bi.LUT)
	case bi.Op >= FirstCmpBr && bi.Op <= LastCmpBr:
		return fmt.Sprintf("r%d, r%d, r%d, @%d, @%d%s", bi.Dst, bi.A, bi.B, bi.T0, bi.T1, backwardSuffix(bi))
	case bi.Op == LoadCvt:
		return fmt.Sprintf("r%d, [r%d+%d].%s, %s r%d", bi.Dst, bi.A, bi.Imm, bi.Type, bi.Sub, bi.Dst2)
	case bi.Op == LookupMov:
		return fmt.Sprintf("r%d, r%d, lut%d, r%d", bi.Dst, bi.B, bi.LUT, bi.Dst2)
	case bi.Op == FallbackOp:
		return fmt.Sprintf("%s.%s", bi.Src.Op, bi.Src.Type)
	}
	return ""
}

func backwardSuffix(bi *Insn) string {
	if bi.Backward {
		return " <backward>"
	}
	return ""
}

// irRef names the source IR instruction(s) by statement ID.
func (bi *Insn) irRef() string {
	if bi.Src2 != nil {
		return fmt.Sprintf("%d,%d", bi.Src.SID, bi.Src2.SID)
	}
	return fmt.Sprintf("%d", bi.Src.SID)
}

func regList(rs []ir.Reg) string {
	if len(rs) == 0 {
		return "()"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}
