// Package bytecode lowers a validated ir.Program into a flat,
// pre-resolved instruction stream for the timing simulator's compiled
// execution engine (internal/cpu's default), in the style of
// starlark-go's internal/compile → interp.go pipeline.
//
// The lowering is a one-shot compile at machine construction:
//
//   - Blocks flatten into one instruction array per function; branch
//     targets become instruction indices (no per-step block/pc pair).
//   - Operand registers are pre-resolved to raw int32 indices into the
//     frame's register file.
//   - Type classes are pre-split: add.i32 and fadd.f32 are distinct
//     opcodes, so the executor never branches on t.IsFloat() per step.
//   - Common pairs fuse into one instruction: compare+branch,
//     load+convert, and lookup+copy.  A fused instruction still retires
//     both components with their exact tree-interpreter timing, energy
//     class, trace hooks, and budget checks — fusion only removes
//     dispatch overhead, never simulation events.
//   - Static timing metadata (latency, functional unit, energy class)
//     is resolved through a CostModel and stored on the instruction,
//     replacing the executor's per-step opTable lookups.
//
// Opcode/type combinations with no pre-split opcode (e.g. sqrt.i32,
// which the validator admits and the tree interpreter rejects at run
// time) lower to FallbackOp: the executor replays them through the tree
// evaluation path so both engines fail with byte-identical errors.
package bytecode

import "axmemo/internal/ir"

// Op is a bytecode opcode.  Type-split families are contiguous so the
// executor dispatches hot compute with two range compares, and the
// fused compare+branch family mirrors the compare family's layout so
// the compare component is recovered by a constant offset.
type Op uint8

// Opcodes.  The groupings (and their order) are load-bearing: see the
// First*/Last* markers below.
const (
	Invalid Op = iota

	Nop
	Const // Dst = Imm
	Mov   // Dst = regs[A]

	// Binary compute, FirstBin..LastBin: integer ALU by width, float
	// arithmetic by width, then compares by type.  All write Dst from
	// regs[A] op regs[B].
	AddI32
	SubI32
	MulI32
	SDivI32
	SRemI32
	AndI32
	OrI32
	XorI32
	ShlI32
	ShrI32

	AddI64
	SubI64
	MulI64
	SDivI64
	SRemI64
	AndI64
	OrI64
	XorI64
	ShlI64
	ShrI64

	FAddF32
	FSubF32
	FMulF32
	FDivF32
	FMinF32
	FMaxF32
	Atan2F32
	PowF32

	FAddF64
	FSubF64
	FMulF64
	FDivF64
	FMinF64
	FMaxF64
	Atan2F64
	PowF64

	CmpEQI32
	CmpNEI32
	CmpLTI32
	CmpLEI32
	CmpGTI32
	CmpGEI32

	CmpEQI64
	CmpNEI64
	CmpLTI64
	CmpLEI64
	CmpGTI64
	CmpGEI64

	CmpEQF32
	CmpNEF32
	CmpLTF32
	CmpLEF32
	CmpGTF32
	CmpGEF32

	CmpEQF64
	CmpNEF64
	CmpLTF64
	CmpLEF64
	CmpGTF64
	CmpGEF64

	// Unary float compute, FirstUn..LastUn.
	FNegF32
	FAbsF32
	SqrtF32
	ExpF32
	LogF32
	SinF32
	CosF32
	TanF32
	AsinF32
	AcosF32
	AtanF32
	FloorF32

	FNegF64
	FAbsF64
	SqrtF64
	ExpF64
	LogF64
	SinF64
	CosF64
	TanF64
	AsinF64
	AcosF64
	AtanF64
	FloorF64

	// Conversions, FirstCvt..LastCvt, laid out FirstCvt + from*4 + to
	// in ir.Type order (i32, i64, f32, f64).
	CvtI32I32
	CvtI32I64
	CvtI32F32
	CvtI32F64
	CvtI64I32
	CvtI64I64
	CvtI64F32
	CvtI64F64
	CvtF32I32
	CvtF32I64
	CvtF32F32
	CvtF32F64
	CvtF64I32
	CvtF64I64
	CvtF64F32
	CvtF64F64

	// Memory, control flow, and the AxMemo ISA extensions.
	Load  // Dst = mem[regs[A]+Imm] at Type
	Store // mem[regs[A]+Imm] = regs[B] at Type
	Jmp   // goto pc T0
	Br    // if regs[A] != 0 goto pc T0 else pc T1
	Ret   // return Args...
	Call  // Rets... = Callee(Args...)
	LdCRC
	RegCRC
	Lookup
	Update
	Invalidate

	// Fused pairs.  CmpBr* mirrors the compare block's layout: the
	// compare component of CmpBrLTF32 is CmpBrLTF32 - FirstCmpBr +
	// FirstCmp = CmpLTF32.
	CmpBrEQI32
	CmpBrNEI32
	CmpBrLTI32
	CmpBrLEI32
	CmpBrGTI32
	CmpBrGEI32

	CmpBrEQI64
	CmpBrNEI64
	CmpBrLTI64
	CmpBrLEI64
	CmpBrGTI64
	CmpBrGEI64

	CmpBrEQF32
	CmpBrNEF32
	CmpBrLTF32
	CmpBrLEF32
	CmpBrGTF32
	CmpBrGEF32

	CmpBrEQF64
	CmpBrNEF64
	CmpBrLTF64
	CmpBrLEF64
	CmpBrGTF64
	CmpBrGEF64

	LoadCvt   // Dst = mem[regs[A]+Imm] at Type; Dst2 = convert(Dst) per Sub
	LookupMov // Dst, B = lookup LUT; Dst2 = Dst

	// FallbackOp replays the source ir.Instr through the tree
	// interpreter's evaluation path (opcode/type combinations with no
	// split opcode; they all fail at run time exactly as the tree does).
	FallbackOp

	opCount
)

// Family range markers.
const (
	FirstBin   = AddI32
	LastBin    = CmpGEF64
	FirstCmp   = CmpEQI32
	FirstUn    = FNegF32
	LastUn     = FloorF64
	FirstCvt   = CvtI32I32
	LastCvt    = CvtF64F64
	FirstCmpBr = CmpBrEQI32
	LastCmpBr  = CmpBrGEF64
)

// NumOps is the opcode count (for dispatch-table sizing).
const NumOps = int(opCount)

// Cost is the static timing/energy metadata of one source opcode, as
// resolved by the executor's cost model.
type Cost struct {
	// Lat is the result latency in cycles (0 = resolved dynamically,
	// e.g. loads from the cache hierarchy).
	Lat uint8
	// FU identifies the functional unit (internal/cpu's FU enum).
	FU uint8
	// Pipelined reports whether the unit accepts a new op next cycle.
	Pipelined bool
	// Class is the energy accounting class (internal/energy's Class).
	Class uint8
}

// CostModel resolves the static metadata of a source opcode.  The cpu
// package passes an adapter over its private latency table; a nil model
// (disassembly-only use) yields zero costs.
type CostModel func(op ir.Op) Cost

// Insn is one flat bytecode instruction.  Which fields are meaningful
// depends on Op; *2 fields describe the second component of a fused
// pair.
type Insn struct {
	Op Op
	// Sub is LoadCvt's conversion opcode (a FirstCvt..LastCvt value).
	Sub Op

	// Pre-resolved cost metadata (see Cost).  For control, memory, and
	// memo opcodes the executor hardcodes the tree interpreter's issue
	// shape and uses only FU (and Lat for Call's retire).
	Lat, Lat2     uint8
	FU, FU2       uint8
	Pipe, Pipe2   bool
	Class, Class2 uint8
	// MemoTag* reports whether the component counts toward
	// Stats.MemoInsns ((IsMemo && != LdCRC) || Aux, the Fig. 8 rule).
	MemoTag, MemoTag2 bool

	// Backward marks a Br (or fused compare+branch) whose taken target
	// does not lie forward of its source block — the BTFN predictor's
	// predict-taken case.
	Backward bool

	LUT, Trunc uint8
	Type       ir.Type // Load/Store/LdCRC/RegCRC element type

	// Register operands as raw indices into the frame register file.
	Dst, A, B int32
	// Dst2 is the fused second destination (LoadCvt's converted value,
	// LookupMov's copy).
	Dst2 int32
	// T0 and T1 are resolved branch-target pcs (Jmp: T0; Br and fused
	// compare+branch: taken → T0, not taken → T1).
	T0, T1 int32

	Imm uint64

	// Args and Rets alias the source instruction's register lists
	// (Call arguments / Ret values, Call results).
	Args, Rets []ir.Reg
	// Callee is the resolved Call target.
	Callee *Func

	// Src (and Src2 for fused pairs) are the source instructions:
	// trace hooks, error messages, and the disassembler's source IR
	// index all refer to them.
	Src, Src2 *ir.Instr
}

// Func is one compiled function.
type Func struct {
	// IR is the source function (register file size, params).
	IR *ir.Function
	// Insns is the flat instruction stream.
	Insns []Insn
	// BlockPC maps each source block index to the pc of its first
	// instruction.
	BlockPC []int32
}

// Program is a compiled program.
type Program struct {
	// IR is the source program.
	IR *ir.Program
	// Funcs maps function names to their compiled bodies.
	Funcs map[string]*Func
	// Entry is the compiled entry function (nil if the program has
	// none).
	Entry *Func
}

// opNames is the disassembly mnemonic table, composed in init from the
// component names so fused and type-split families stay consistent.
var opNames [opCount]string

func init() {
	opNames[Invalid] = "invalid"
	opNames[Nop] = "nop"
	opNames[Const] = "const"
	opNames[Mov] = "mov"
	intBin := []string{"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "shr"}
	for i, n := range intBin {
		opNames[AddI32+Op(i)] = n + ".i32"
		opNames[AddI64+Op(i)] = n + ".i64"
	}
	fBin := []string{"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "atan2", "pow"}
	for i, n := range fBin {
		opNames[FAddF32+Op(i)] = n + ".f32"
		opNames[FAddF64+Op(i)] = n + ".f64"
	}
	cmps := []string{"cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge"}
	types := []string{"i32", "i64", "f32", "f64"}
	for ti, tn := range types {
		for ci, cn := range cmps {
			opNames[FirstCmp+Op(ti*6+ci)] = cn + "." + tn
			opNames[FirstCmpBr+Op(ti*6+ci)] = cn + "." + tn + "+br"
		}
	}
	un := []string{"fneg", "fabs", "sqrt", "exp", "log", "sin", "cos", "tan", "asin", "acos", "atan", "floor"}
	for i, n := range un {
		opNames[FNegF32+Op(i)] = n + ".f32"
		opNames[FNegF64+Op(i)] = n + ".f64"
	}
	for fi, fn := range types {
		for ti, tn := range types {
			opNames[FirstCvt+Op(fi*4+ti)] = "cvt." + fn + "." + tn
		}
	}
	opNames[Load] = "load"
	opNames[Store] = "store"
	opNames[Jmp] = "jmp"
	opNames[Br] = "br"
	opNames[Ret] = "ret"
	opNames[Call] = "call"
	opNames[LdCRC] = "ld_crc"
	opNames[RegCRC] = "reg_crc"
	opNames[Lookup] = "lookup"
	opNames[Update] = "update"
	opNames[Invalidate] = "invalidate"
	opNames[LoadCvt] = "load+cvt"
	opNames[LookupMov] = "lookup+mov"
	opNames[FallbackOp] = "fallback"
}

// String returns the disassembly mnemonic.
func (o Op) String() string {
	if o < opCount && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Fused reports whether the opcode retires two source instructions.
func (o Op) Fused() bool {
	return o >= FirstCmpBr && o <= LastCmpBr || o == LoadCvt || o == LookupMov
}
