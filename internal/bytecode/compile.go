package bytecode

import (
	"fmt"

	"axmemo/internal/ir"
)

// Compile lowers a program into flat bytecode.  The program is
// (re-)validated first: the lowering trusts the same field bounds the
// interpreter does.  costs resolves static timing metadata; nil yields
// zero costs (sufficient for disassembly, not for execution).
func Compile(p *ir.Program, costs CostModel) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if costs == nil {
		costs = func(ir.Op) Cost { return Cost{} }
	}
	bp := &Program{IR: p, Funcs: make(map[string]*Func, len(p.Funcs))}
	for name, f := range p.Funcs {
		bp.Funcs[name] = compileFunc(f, costs)
	}
	// Second pass: resolve call targets across functions.
	for _, bf := range bp.Funcs {
		for i := range bf.Insns {
			bi := &bf.Insns[i]
			if bi.Op == Call {
				callee, ok := bp.Funcs[bi.Src.Callee]
				if !ok {
					// The validator guarantees callees exist.
					return nil, fmt.Errorf("bytecode: call to undefined function %q", bi.Src.Callee)
				}
				bi.Callee = callee
			}
		}
	}
	if ef := p.EntryFunc(); ef != nil {
		bp.Entry = bp.Funcs[ef.Name]
	}
	return bp, nil
}

// compileFunc flattens one function: emit (with fusion) recording each
// block's start pc, then patch branch targets from block indices to pcs.
func compileFunc(f *ir.Function, costs CostModel) *Func {
	bf := &Func{IR: f, BlockPC: make([]int32, len(f.Blocks))}
	for _, b := range f.Blocks {
		bf.BlockPC[b.Index] = int32(len(bf.Insns))
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if i+1 < len(b.Instrs) {
				if fused, ok := fuse(in, &b.Instrs[i+1], b.Index, costs); ok {
					bf.Insns = append(bf.Insns, fused)
					i++
					continue
				}
			}
			bf.Insns = append(bf.Insns, lower(in, b.Index, costs))
		}
	}
	for i := range bf.Insns {
		bi := &bf.Insns[i]
		switch {
		case bi.Op == Jmp:
			bi.T0 = bf.BlockPC[bi.T0]
		case bi.Op == Br, bi.Op >= FirstCmpBr && bi.Op <= LastCmpBr:
			bi.T0 = bf.BlockPC[bi.T0]
			bi.T1 = bf.BlockPC[bi.T1]
		}
	}
	return bf
}

// fuse tries to combine in with its successor next (both in the block
// with index blockIdx).  Fusion is safe because branches only target
// block starts: control can never enter at next.  The fused instruction
// preserves both components' architectural effects in full.
func fuse(in, next *ir.Instr, blockIdx int, costs CostModel) (Insn, bool) {
	switch {
	case next.Op == ir.Br && in.Op >= ir.CmpEQ && in.Op <= ir.CmpGE && next.A == in.Dst:
		cmp := splitOp(in)
		if cmp == FallbackOp {
			return Insn{}, false // compares split at every type; defensive
		}
		bi := lowered(in, costs)
		bi.Op = FirstCmpBr + (cmp - FirstCmp)
		bi.Dst, bi.A, bi.B = int32(in.Dst), int32(in.A), int32(in.B)
		bi.T0, bi.T1 = int32(next.Blk0), int32(next.Blk1)
		bi.Backward = next.Blk0 <= blockIdx
		second(&bi, next, costs)
		return bi, true

	case in.Op == ir.Load && next.Op == ir.Cvt && next.A == in.Dst:
		bi := lowered(in, costs)
		bi.Op = LoadCvt
		bi.Dst, bi.A = int32(in.Dst), int32(in.A)
		bi.Imm, bi.Type = in.Imm, in.Type
		bi.Sub = FirstCvt + Op(next.SrcType)*4 + Op(next.Type)
		bi.Dst2 = int32(next.Dst)
		second(&bi, next, costs)
		return bi, true

	case in.Op == ir.Lookup && next.Op == ir.Mov && next.A == in.Dst:
		bi := lowered(in, costs)
		bi.Op = LookupMov
		bi.Dst, bi.B = int32(in.Dst), int32(in.B)
		bi.LUT = in.LUT
		bi.Dst2 = int32(next.Dst)
		second(&bi, next, costs)
		return bi, true
	}
	return Insn{}, false
}

// lowered seeds an Insn with the first component's source, cost, and
// memo-accounting metadata.
func lowered(in *ir.Instr, costs CostModel) Insn {
	c := costs(in.Op)
	return Insn{
		Src:     in,
		Lat:     c.Lat,
		FU:      c.FU,
		Pipe:    c.Pipelined,
		Class:   c.Class,
		MemoTag: memoTag(in),
	}
}

// second fills the fused second component's metadata.
func second(bi *Insn, next *ir.Instr, costs CostModel) {
	c := costs(next.Op)
	bi.Src2 = next
	bi.Lat2 = c.Lat
	bi.FU2 = c.FU
	bi.Pipe2 = c.Pipelined
	bi.Class2 = c.Class
	bi.MemoTag2 = memoTag(next)
}

// memoTag is the Stats.MemoInsns accounting rule (Fig. 8): AxMemo
// instructions except ld_crc, plus compiler-inserted auxiliaries.
func memoTag(in *ir.Instr) bool {
	return in.Op.IsMemo() && in.Op != ir.LdCRC || in.Aux
}

// lower translates one unfused instruction.
func lower(in *ir.Instr, blockIdx int, costs CostModel) Insn {
	bi := lowered(in, costs)
	switch in.Op {
	case ir.Nop:
		bi.Op = Nop
	case ir.Const:
		bi.Op = Const
		bi.Dst, bi.Imm = int32(in.Dst), in.Imm
	case ir.Mov:
		bi.Op = Mov
		bi.Dst, bi.A = int32(in.Dst), int32(in.A)
	case ir.Cvt:
		bi.Op = FirstCvt + Op(in.SrcType)*4 + Op(in.Type)
		bi.Dst, bi.A = int32(in.Dst), int32(in.A)
	case ir.Load:
		bi.Op = Load
		bi.Dst, bi.A = int32(in.Dst), int32(in.A)
		bi.Imm, bi.Type = in.Imm, in.Type
	case ir.Store:
		bi.Op = Store
		bi.A, bi.B = int32(in.A), int32(in.B)
		bi.Imm, bi.Type = in.Imm, in.Type
	case ir.Jmp:
		bi.Op = Jmp
		bi.T0 = int32(in.Blk0)
	case ir.Br:
		bi.Op = Br
		bi.A = int32(in.A)
		bi.T0, bi.T1 = int32(in.Blk0), int32(in.Blk1)
		bi.Backward = in.Blk0 <= blockIdx
	case ir.Ret:
		bi.Op = Ret
		bi.Args = in.Args
	case ir.Call:
		bi.Op = Call
		bi.Args, bi.Rets = in.Args, in.Rets
	case ir.LdCRC:
		bi.Op = LdCRC
		bi.Dst, bi.A = int32(in.Dst), int32(in.A)
		bi.Imm, bi.Type = in.Imm, in.Type
		bi.LUT, bi.Trunc = in.LUT, in.Trunc
	case ir.RegCRC:
		bi.Op = RegCRC
		bi.A = int32(in.A)
		bi.Type = in.Type
		bi.LUT, bi.Trunc = in.LUT, in.Trunc
	case ir.Lookup:
		bi.Op = Lookup
		bi.Dst, bi.B = int32(in.Dst), int32(in.B)
		bi.LUT = in.LUT
	case ir.Update:
		bi.Op = Update
		bi.A = int32(in.A)
		bi.LUT = in.LUT
	case ir.Invalidate:
		bi.Op = Invalidate
		bi.LUT = in.LUT
	default:
		bi.Op = splitOp(in)
		if bi.Op != FallbackOp {
			bi.Dst, bi.A, bi.B = int32(in.Dst), int32(in.A), int32(in.B)
		}
	}
	return bi
}

// splitOp maps a compute (op, type) pair to its pre-split opcode, or
// FallbackOp when the combination has none (the tree interpreter
// rejects it at run time; FallbackOp reproduces that exactly).
func splitOp(in *ir.Instr) Op {
	op, t := in.Op, in.Type
	switch {
	case op >= ir.Add && op <= ir.Shr:
		switch t {
		case ir.I32:
			return AddI32 + Op(op-ir.Add)
		case ir.I64:
			return AddI64 + Op(op-ir.Add)
		}
	case op >= ir.CmpEQ && op <= ir.CmpGE:
		return FirstCmp + Op(t)*6 + Op(op-ir.CmpEQ)
	case op >= ir.FAdd && op <= ir.FDiv:
		if t.IsFloat() {
			return fFamily(t) + Op(op-ir.FAdd)
		}
	case op == ir.FMin, op == ir.FMax:
		if t.IsFloat() {
			return fFamily(t) + 4 + Op(op-ir.FMin)
		}
	case op == ir.Atan2:
		if t.IsFloat() {
			return fFamily(t) + 6
		}
	case op == ir.Pow:
		if t.IsFloat() {
			return fFamily(t) + 7
		}
	case op == ir.FNeg, op == ir.FAbs:
		if t.IsFloat() {
			return unFamily(t) + Op(op-ir.FNeg)
		}
	case op >= ir.Sqrt && op <= ir.Atan:
		if t.IsFloat() {
			return unFamily(t) + 2 + Op(op-ir.Sqrt)
		}
	case op == ir.Floor:
		if t.IsFloat() {
			return unFamily(t) + 11
		}
	}
	return FallbackOp
}

func fFamily(t ir.Type) Op {
	if t == ir.F32 {
		return FAddF32
	}
	return FAddF64
}

func unFamily(t ir.Type) Op {
	if t == ir.F32 {
		return FNegF32
	}
	return FNegF64
}
