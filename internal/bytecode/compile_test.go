package bytecode

import (
	"strings"
	"testing"

	"axmemo/internal/ir"
)

// buildLoop builds a two-function program with a fusable compare+branch
// back-edge, a load+convert pair, and a call.
func buildLoop() *ir.Program {
	p := ir.NewProgram("loop")

	k := p.NewFunc("widen", []ir.Type{ir.I64}, []ir.Type{ir.F64})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	v := bu.Load(ir.F32, k.Params[0], 0)
	w := bu.Cvt(ir.F32, ir.F64, v)
	bu.Ret(w)

	f := p.NewFunc("loop", []ir.Type{ir.I32}, []ir.Type{ir.I32})
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	bu = ir.At(f, entry)
	i := bu.ConstI32(0)
	one := bu.ConstI32(1)
	addr := bu.ConstI64(0)
	bu.Jmp(loop)

	bu.SetBlock(loop)
	c := bu.Bin(ir.CmpLT, ir.I32, i, f.Params[0])
	bu.Br(c, body, done)

	bu.SetBlock(body)
	bu.Call("widen", 1, addr)
	i2 := bu.Bin(ir.Add, ir.I32, i, one)
	bu.MovTo(ir.I32, i, i2)
	bu.Jmp(loop)

	bu.SetBlock(done)
	bu.Ret(i)
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func TestCompileFusesAndResolves(t *testing.T) {
	bp, err := Compile(buildLoop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Entry == nil || bp.Entry.IR.Name != "loop" {
		t.Fatalf("entry = %+v", bp.Entry)
	}
	lf := bp.Funcs["loop"]

	var cmpBr, call *Insn
	for i := range lf.Insns {
		bi := &lf.Insns[i]
		switch {
		case bi.Op >= FirstCmpBr && bi.Op <= LastCmpBr:
			cmpBr = bi
		case bi.Op == Call:
			call = bi
		}
	}
	if cmpBr == nil {
		t.Fatal("compare+branch did not fuse")
	}
	if cmpBr.Op != CmpBrLTI32 {
		t.Errorf("fused op = %s, want cmplt.i32+br", cmpBr.Op)
	}
	if cmpBr.Src == nil || cmpBr.Src2 == nil {
		t.Error("fused pair missing source instructions")
	}
	// Taken target (body) lies forward of the loop header: not a
	// BTFN-predicted backward branch.
	if cmpBr.Backward {
		t.Error("forward conditional marked backward")
	}
	// Targets must be pcs into the flat stream, bounded by the stream.
	for _, pc := range []int32{cmpBr.T0, cmpBr.T1} {
		if pc < 0 || int(pc) >= len(lf.Insns) {
			t.Errorf("branch target pc %d out of range", pc)
		}
	}
	if call == nil || call.Callee == nil || call.Callee.IR.Name != "widen" {
		t.Fatalf("call not resolved: %+v", call)
	}

	// The widen kernel's load+convert pair must fuse.
	wf := bp.Funcs["widen"]
	found := false
	for i := range wf.Insns {
		if wf.Insns[i].Op == LoadCvt {
			found = true
			if wf.Insns[i].Sub != CvtF32F64 {
				t.Errorf("LoadCvt sub-op = %s, want cvt.f32.f64", wf.Insns[i].Sub)
			}
		}
	}
	if !found {
		t.Error("load+convert did not fuse")
	}

	// BlockPC maps every source block to a valid pc.
	for idx, pc := range lf.BlockPC {
		if pc < 0 || int(pc) > len(lf.Insns) {
			t.Errorf("block %d pc %d out of range", idx, pc)
		}
	}
}

func TestBackwardBranchMarked(t *testing.T) {
	// do-while shape: the conditional back-edge branches to its own
	// block, which BTFN predicts taken.
	p := ir.NewProgram("spin")
	f := p.NewFunc("spin", []ir.Type{ir.I32}, []ir.Type{ir.I32})
	body := f.NewBlock("body")
	done := f.NewBlock("done")
	bu := ir.At(f, body)
	one := bu.ConstI32(1)
	n2 := bu.Bin(ir.Sub, ir.I32, f.Params[0], one)
	bu.MovTo(ir.I32, f.Params[0], n2)
	c := bu.Bin(ir.CmpGT, ir.I32, n2, one)
	bu.Br(c, body, done)
	bu.SetBlock(done)
	bu.Ret(n2)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	bp, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen bool
	for i := range bp.Entry.Insns {
		bi := &bp.Entry.Insns[i]
		if bi.Op >= FirstCmpBr && bi.Op <= LastCmpBr {
			seen = true
			if !bi.Backward {
				t.Error("loop back-edge not marked backward")
			}
		}
	}
	if !seen {
		t.Fatal("back-edge compare+branch did not fuse")
	}
}

func TestSplitOpFallback(t *testing.T) {
	for _, tc := range []struct {
		op   ir.Op
		t    ir.Type
		want Op
	}{
		{ir.Add, ir.I32, AddI32},
		{ir.Shr, ir.I64, ShrI64},
		{ir.Add, ir.F32, FallbackOp}, // int op at float type: runtime error
		{ir.FAdd, ir.F64, FAddF64},
		{ir.FAdd, ir.I32, FallbackOp}, // float op at int type
		{ir.FMax, ir.F32, FMaxF32},
		{ir.Pow, ir.F64, PowF64},
		{ir.CmpGE, ir.F32, CmpGEF32},
		{ir.CmpEQ, ir.I64, CmpEQI64},
		{ir.Sqrt, ir.F64, SqrtF64},
		{ir.Sqrt, ir.I32, FallbackOp}, // the classic validator-admitted trap
		{ir.Floor, ir.F32, FloorF32},
		{ir.FNeg, ir.F64, FNegF64},
		{ir.Atan, ir.F32, AtanF32},
	} {
		if got := splitOp(&ir.Instr{Op: tc.op, Type: tc.t}); got != tc.want {
			t.Errorf("splitOp(%s.%s) = %s, want %s", tc.op, tc.t, got, tc.want)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		if o.String() == "op?" || o.String() == "" {
			t.Errorf("opcode %d has no name", o)
		}
	}
	if opCount.String() != "op?" {
		t.Error("out-of-range opcode should render op?")
	}
	// Layout invariants the executor's constant-offset recovery relies on.
	if CmpBrLTF32-FirstCmpBr+FirstCmp != CmpLTF32 {
		t.Error("CmpBr block does not mirror the compare block layout")
	}
	if FirstCvt+Op(ir.F32)*4+Op(ir.F64) != CvtF32F64 {
		t.Error("Cvt block layout broken")
	}
}

func TestFused(t *testing.T) {
	for _, o := range []Op{CmpBrEQI32, CmpBrGEF64, LoadCvt, LookupMov} {
		if !o.Fused() {
			t.Errorf("%s not reported fused", o)
		}
	}
	for _, o := range []Op{AddI32, Br, Lookup, FallbackOp} {
		if o.Fused() {
			t.Errorf("%s reported fused", o)
		}
	}
}

func TestDisassemble(t *testing.T) {
	bp, err := Compile(buildLoop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	listing := bp.Disassemble()
	for _, want := range []string{
		"func loop:",
		"func widen:",
		"cmplt.i32+br",
		"load+cvt",
		"cvt.f32.f64",
		"widen(",
		"; ir=",
		"b2:",
		"@",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
	// The entry function leads the listing.
	if !strings.HasPrefix(listing, "func loop:") {
		t.Errorf("entry function not first:\n%s", listing)
	}
}
