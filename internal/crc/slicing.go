package crc

import "encoding/binary"

// Slicing8 is a software-optimized CRC engine that absorbs eight input
// bytes per step using the slicing-by-8 technique (eight 256-entry
// tables).  It computes exactly the same function as the Serial and
// Table units — the property tests assert this — but it is not a
// hardware model: the simulator's cycle cost model keeps charging the
// paper's per-byte absorption rate (Table 4) regardless of which
// functional engine computes the digest.  The memoization unit's hash
// path uses this engine so that large sweeps spend their time in the
// timing model, not in byte-at-a-time hashing.
type Slicing8 struct {
	p       Params
	tab     [8][256]uint64
	state   uint64
	fedByte uint64
}

// NewSlicing8 returns a reset slicing-by-8 CRC engine for p.
func NewSlicing8(p Params) *Slicing8 {
	s := &Slicing8{p: p}
	// tab[0] is the plain byte-at-a-time table; tab[k] applies the
	// byte recurrence k additional times, so that eight table reads
	// absorb eight bytes at once.
	for i := 0; i < 256; i++ {
		c := uint64(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ p.Poly
			} else {
				c >>= 1
			}
		}
		s.tab[0][i] = c & p.mask()
	}
	for k := 1; k < 8; k++ {
		for i := 0; i < 256; i++ {
			prev := s.tab[k-1][i]
			s.tab[k][i] = s.tab[0][prev&0xff] ^ (prev >> 8)
		}
	}
	s.Reset()
	return s
}

// Reset returns the register to the algorithm's initial value.
func (s *Slicing8) Reset() {
	s.state = s.p.Init & s.p.mask()
	s.fedByte = 0
}

// FeedByte absorbs one byte with the ordinary byte recurrence.
func (s *Slicing8) FeedByte(b byte) {
	s.state = s.tab[0][byte(s.state)^b] ^ (s.state >> 8)
	s.fedByte++
}

// feed8 absorbs eight little-endian bytes packed in w in one step.
// Because any width-n state occupies the low n bits of the register and
// the byte recurrence shifts right, the eight-table formulation of the
// 64-bit algorithm is correct for every supported width.
func (s *Slicing8) feed8(w uint64) {
	t := s.state ^ w
	s.state = s.tab[7][t&0xff] ^
		s.tab[6][(t>>8)&0xff] ^
		s.tab[5][(t>>16)&0xff] ^
		s.tab[4][(t>>24)&0xff] ^
		s.tab[3][(t>>32)&0xff] ^
		s.tab[2][(t>>40)&0xff] ^
		s.tab[1][(t>>48)&0xff] ^
		s.tab[0][t>>56]
	s.fedByte += 8
}

// Feed absorbs every byte of p in order, eight at a time where possible.
func (s *Slicing8) Feed(p []byte) {
	for len(p) >= 8 {
		s.feed8(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	for _, b := range p {
		s.FeedByte(b)
	}
}

// FeedWord absorbs the low n little-endian bytes of w (1 ≤ n ≤ 8) — the
// shape of a register or memory lane entering the hash unit.
func (s *Slicing8) FeedWord(w uint64, n int) {
	if n == 8 {
		s.feed8(w)
		return
	}
	for i := 0; i < n; i++ {
		s.FeedByte(byte(w >> (8 * uint(i))))
	}
}

// Sum returns the current digest.
func (s *Slicing8) Sum() uint64 {
	return (s.state ^ s.p.XorOut) & s.p.mask()
}

// Params reports the engine's algorithm parameters.
func (s *Slicing8) Params() Params { return s.p }

// BytesFed reports how many bytes have been absorbed since the last
// Reset.
func (s *Slicing8) BytesFed() uint64 { return s.fedByte }

// State exposes the raw (pre-XorOut) register value, for Hash Value
// Register context switches (§3.2).
func (s *Slicing8) State() uint64 { return s.state }

// SetState restores a raw register value previously read with State.
func (s *Slicing8) SetState(v uint64) { s.state = v & s.p.mask() }

var _ Hasher = (*Slicing8)(nil)
