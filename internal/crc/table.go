package crc

// Table is the n-bit-parallel CRC unit of Fig. 3 (right) with n = 8: it
// consumes one byte of input per clock cycle using a 256-entry constant
// RAM (the paper's "2^n x m-bit RAM").  The evaluation's hardware unit is
// this design, unrolled four times and pipelined so that the common 4-byte
// input is absorbed at one byte per cycle with full throughput (§6.1).
type Table struct {
	p       Params
	tab     [256]uint64
	state   uint64
	fedByte uint64
}

// NewTable returns a reset byte-parallel CRC unit, building its constant
// RAM from the generator polynomial.
func NewTable(p Params) *Table {
	t := &Table{p: p}
	for i := 0; i < 256; i++ {
		c := uint64(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ p.Poly
			} else {
				c >>= 1
			}
		}
		t.tab[i] = c & p.mask()
	}
	t.Reset()
	return t
}

// Reset returns the register to the algorithm's initial value.
func (t *Table) Reset() {
	t.state = t.p.Init & t.p.mask()
	t.fedByte = 0
}

// FeedByte absorbs one byte — the unit's per-cycle operation.
func (t *Table) FeedByte(b byte) {
	t.state = t.tab[byte(t.state)^b] ^ (t.state >> 8)
	t.state &= t.p.mask()
	t.fedByte++
}

// Feed absorbs every byte of p in order.
func (t *Table) Feed(p []byte) {
	for _, b := range p {
		t.FeedByte(b)
	}
}

// Sum returns the current digest.
func (t *Table) Sum() uint64 {
	return (t.state ^ t.p.XorOut) & t.p.mask()
}

// Params reports the unit's algorithm parameters.
func (t *Table) Params() Params { return t.p }

// BytesFed reports how many bytes have been absorbed since the last Reset.
// The 8-bit-parallel unit takes exactly this many cycles.
func (t *Table) BytesFed() uint64 { return t.fedByte }

// State exposes the raw (pre-XorOut) register value.  The Hash Value
// Registers of the memoization unit snapshot and restore this state when
// CRC computations for different LUTs interleave (§3.2).
func (t *Table) State() uint64 { return t.state }

// SetState restores a raw register value previously read with State.
func (t *Table) SetState(s uint64) { t.state = s & t.p.mask() }

var _ Hasher = (*Table)(nil)
