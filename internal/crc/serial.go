package crc

// Serial is the bit-serial CRC unit of Fig. 3 (left): a linear-feedback
// shift register whose first stage input is the XOR of the input bit and
// the feedback bit.  It processes one bit of input per clock cycle, so a
// byte costs eight cycles; the n-bit-parallel Table unit exists precisely
// to avoid that latency (§3.1).
type Serial struct {
	p     Params
	state uint64
	// bitsFed counts total input bits, which a timing model can use to
	// derive the cycle cost of a serial unit (one cycle per bit).
	bitsFed uint64
}

// NewSerial returns a reset bit-serial CRC unit.
func NewSerial(p Params) *Serial {
	s := &Serial{p: p}
	s.Reset()
	return s
}

// Reset returns the register to the algorithm's initial value.
func (s *Serial) Reset() {
	s.state = s.p.Init & s.p.mask()
	s.bitsFed = 0
}

// FeedBit shifts a single input bit (the low bit of b) into the register.
// This is the fundamental per-cycle operation of the serial unit.
func (s *Serial) FeedBit(b byte) {
	// Reflected algorithm: the input bit enters at the low end.
	in := (s.state ^ uint64(b&1)) & 1
	s.state >>= 1
	if in != 0 {
		s.state ^= s.p.Poly
	}
	s.state &= s.p.mask()
	s.bitsFed++
}

// Feed shifts every bit of p into the register, least-significant bit of
// each byte first (reflected bit order).
func (s *Serial) Feed(p []byte) {
	for _, b := range p {
		for i := 0; i < 8; i++ {
			s.FeedBit(b >> i)
		}
	}
}

// Sum returns the current digest.
func (s *Serial) Sum() uint64 {
	return (s.state ^ s.p.XorOut) & s.p.mask()
}

// Params reports the unit's algorithm parameters.
func (s *Serial) Params() Params { return s.p }

// BitsFed reports how many input bits have been shifted in since the last
// Reset.  A serial unit takes exactly this many cycles.
func (s *Serial) BitsFed() uint64 { return s.bitsFed }

var _ Hasher = (*Serial)(nil)
