package crc

import (
	"hash/crc32"
	"hash/crc64"
	"math/rand"
	"testing"
	"testing/quick"
)

// The catalogue check value is the digest of the ASCII string "123456789".
var check = []byte("123456789")

func TestCheckValues(t *testing.T) {
	cases := []struct {
		p    Params
		want uint64
	}{
		{CRC16, 0xBB3D},
		{CRC32, 0xCBF43926},
		{CRC64, 0x995DC9BBDF1939FA},
	}
	for _, c := range cases {
		t.Run(c.p.Name, func(t *testing.T) {
			if got := Checksum(c.p, check); got != c.want {
				t.Errorf("table %s(%q) = %#x, want %#x", c.p.Name, check, got, c.want)
			}
			s := NewSerial(c.p)
			s.Feed(check)
			if got := s.Sum(); got != c.want {
				t.Errorf("serial %s(%q) = %#x, want %#x", c.p.Name, check, got, c.want)
			}
		})
	}
}

func TestMatchesStdlibCRC32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		want := uint64(crc32.ChecksumIEEE(buf))
		if got := Checksum(CRC32, buf); got != want {
			t.Fatalf("CRC32(%x) = %#x, want stdlib %#x", buf, got, want)
		}
	}
}

func TestMatchesStdlibCRC64(t *testing.T) {
	tab := crc64.MakeTable(crc64.ECMA)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		want := crc64.Checksum(buf, tab)
		if got := Checksum(CRC64, buf); got != want {
			t.Fatalf("CRC64(%x) = %#x, want stdlib %#x", buf, got, want)
		}
	}
}

// Property: the serial (bit-at-a-time) and table (byte-parallel) hardware
// produce identical digests for every input stream — the two Fig. 3
// designs are functionally equivalent.
func TestSerialTableEquivalence(t *testing.T) {
	for _, p := range []Params{CRC16, CRC32, CRC64} {
		p := p
		f := func(data []byte) bool {
			s := NewSerial(p)
			s.Feed(data)
			return s.Sum() == Checksum(p, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: serial != table: %v", p.Name, err)
		}
	}
}

// Property: the serial, table, and slicing-by-8 engines produce identical
// digests for every random stream at every supported width — the software
// fast path computes exactly the function of the modeled hardware.
func TestSerialTableSlicingEquivalence(t *testing.T) {
	for _, p := range []Params{CRC16, CRC32, CRC64} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(p.Width)))
			for trial := 0; trial < 300; trial++ {
				buf := make([]byte, rng.Intn(67))
				rng.Read(buf)
				want := Checksum(p, buf)
				s := NewSerial(p)
				s.Feed(buf)
				if got := s.Sum(); got != want {
					t.Fatalf("serial %s(%x) = %#x, table %#x", p.Name, buf, got, want)
				}
				sl := NewSlicing8(p)
				sl.Feed(buf)
				if got := sl.Sum(); got != want {
					t.Fatalf("slicing8 %s(%x) = %#x, table %#x", p.Name, buf, got, want)
				}
				if sl.BytesFed() != uint64(len(buf)) {
					t.Fatalf("slicing8 BytesFed = %d, want %d", sl.BytesFed(), len(buf))
				}
			}
		})
	}
}

// Property: FeedWord (the lane-shaped entry point the memoization unit
// uses) agrees with byte-at-a-time feeding for 4- and 8-byte lanes, and
// State/SetState context switches preserve the digest.
func TestSlicingFeedWordAndState(t *testing.T) {
	for _, p := range []Params{CRC16, CRC32, CRC64} {
		rng := rand.New(rand.NewSource(int64(100 + p.Width)))
		for trial := 0; trial < 200; trial++ {
			lanes := 1 + rng.Intn(6)
			ref := NewTable(p)
			sl := NewSlicing8(p)
			for i := 0; i < lanes; i++ {
				w := rng.Uint64()
				n := 4
				if rng.Intn(2) == 1 {
					n = 8
				}
				for k := 0; k < n; k++ {
					ref.FeedByte(byte(w >> (8 * uint(k))))
				}
				// Round-trip the state, as the HVR file does when
				// computations for different LUTs interleave.
				save := sl.State()
				sl.SetState(save)
				sl.FeedWord(w, n)
			}
			if ref.Sum() != sl.Sum() {
				t.Fatalf("%s: FeedWord digest %#x != byte-fed %#x", p.Name, sl.Sum(), ref.Sum())
			}
		}
	}
}

// Property: feeding a stream in two chunks equals feeding it whole — the
// "accumulate" property the paper relies on to hide hash latency behind
// the ld_crc/reg_crc instruction stream.
func TestStreamingAccumulation(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := NewTable(CRC32)
		whole.Feed(append(append([]byte{}, a...), b...))
		split := NewTable(CRC32)
		split.Feed(a)
		split.Feed(b)
		return whole.Sum() == split.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every bit of the input affects the CRC output (paper §3.1,
// property 2 — unlike the sampling-based hash of ATM).  Flipping any
// single bit must change the digest.
func TestEveryBitMatters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		buf := make([]byte, 1+rng.Intn(40))
		rng.Read(buf)
		base := Checksum(CRC32, buf)
		for i := range buf {
			for bit := 0; bit < 8; bit++ {
				buf[i] ^= 1 << bit
				if Checksum(CRC32, buf) == base {
					t.Fatalf("flipping byte %d bit %d left CRC unchanged", i, bit)
				}
				buf[i] ^= 1 << bit
			}
		}
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := NewTable(CRC32)
	h.Feed([]byte("garbage"))
	h.Reset()
	h.Feed(check)
	if got := h.Sum(); got != 0xCBF43926 {
		t.Errorf("after Reset, CRC32(check) = %#x, want 0xCBF43926", got)
	}
	if h.BytesFed() != uint64(len(check)) {
		t.Errorf("BytesFed = %d, want %d", h.BytesFed(), len(check))
	}
}

func TestStateSaveRestore(t *testing.T) {
	// Interleaved hashing via State/SetState must equal sequential
	// hashing — this is the Hash Value Register context-switch model.
	a, b := []byte("stream-a-0123"), []byte("stream-b-4567")
	h := NewTable(CRC32)

	h.Reset()
	h.Feed(a[:6])
	ctxA := h.State()
	h.Reset()
	h.Feed(b[:6])
	ctxB := h.State()

	h.SetState(ctxA)
	h.Feed(a[6:])
	gotA := h.Sum()
	h.SetState(ctxB)
	h.Feed(b[6:])
	gotB := h.Sum()

	if want := Checksum(CRC32, a); gotA != want {
		t.Errorf("interleaved CRC(a) = %#x, want %#x", gotA, want)
	}
	if want := Checksum(CRC32, b); gotB != want {
		t.Errorf("interleaved CRC(b) = %#x, want %#x", gotB, want)
	}
}

func TestByWidth(t *testing.T) {
	for _, w := range []uint{16, 32, 64} {
		p, err := ByWidth(w)
		if err != nil {
			t.Fatalf("ByWidth(%d): %v", w, err)
		}
		if p.Width != w {
			t.Errorf("ByWidth(%d).Width = %d", w, p.Width)
		}
	}
	if _, err := ByWidth(24); err == nil {
		t.Error("ByWidth(24) succeeded, want error")
	}
}

func TestSerialBitAccounting(t *testing.T) {
	s := NewSerial(CRC32)
	s.Feed(make([]byte, 5))
	if s.BitsFed() != 40 {
		t.Errorf("BitsFed = %d, want 40", s.BitsFed())
	}
}

func TestSoftwareCost(t *testing.T) {
	// The paper's accounting: a 4-byte input costs at least 4*3 = 12
	// instructions in the software implementation.
	if got := SoftwareCost(4); got != 12 {
		t.Errorf("SoftwareCost(4) = %d, want 12", got)
	}
	if got := SoftwareCost(36); got != 108 {
		t.Errorf("SoftwareCost(36) = %d, want 108", got)
	}
}

// Collision smoke check: over many random distinct 24-byte inputs, the
// 32-bit CRC must exhibit a near-zero collision rate (the paper reports
// "virtually zero hashing collision rate" for its benchmarks).
func TestLowCollisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := make(map[uint64][]byte)
	const n = 200000
	collisions := 0
	buf := make([]byte, 24)
	for i := 0; i < n; i++ {
		rng.Read(buf)
		sum := Checksum(CRC32, buf)
		if prev, ok := seen[sum]; ok && string(prev) != string(buf) {
			collisions++
		} else {
			seen[sum] = append([]byte{}, buf...)
		}
	}
	// Birthday bound for 200k draws over 2^32 is ~4.6 expected
	// collisions; allow generous slack while still catching a broken
	// hash (which would collide orders of magnitude more).
	if collisions > 40 {
		t.Errorf("CRC32 collisions = %d over %d inputs, want < 40", collisions, n)
	}
}

func BenchmarkTableCRC32(b *testing.B) {
	h := NewTable(CRC32)
	buf := make([]byte, 36)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		h.Reset()
		h.Feed(buf)
		_ = h.Sum()
	}
}

func BenchmarkSerialCRC32(b *testing.B) {
	h := NewSerial(CRC32)
	buf := make([]byte, 36)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		h.Reset()
		h.Feed(buf)
		_ = h.Sum()
	}
}

func BenchmarkSlicing8CRC32(b *testing.B) {
	h := NewSlicing8(CRC32)
	buf := make([]byte, 36)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		h.Reset()
		h.Feed(buf)
		_ = h.Sum()
	}
}
