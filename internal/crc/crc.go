// Package crc models the cyclic-redundancy-check hashing hardware that
// AxMemo uses to compress an arbitrary-size stream of memoization inputs
// into a small fixed-size lookup-table tag (ISCA'19 §3.1, Fig. 3).
//
// Two implementations of the same algorithm are provided, mirroring the two
// hardware designs in the paper's Fig. 3:
//
//   - Serial: a bit-at-a-time linear-feedback-shift-register-style unit
//     that consumes one input bit per clock cycle.
//   - Table: an n-bit-parallel unit that consumes one byte per cycle using
//     a 256-entry constant RAM (the "2^n x m-bit RAM" of the paper).
//
// Both produce identical digests for identical input streams; the property
// tests assert this equivalence.  The package also exposes the software
// cost model used by the paper's software-LUT baseline (§6.2): computing
// the CRC of a 4-byte input in software costs at least 12 instructions
// (one AND, one LOAD and one XOR per byte).
package crc

import "fmt"

// Params describes a reflected CRC algorithm.  All AxMemo CRCs are
// reflected (least-significant-bit first), matching the common hardware
// realizations of CRC-16/ARC, CRC-32 (IEEE 802.3) and CRC-64/XZ.
type Params struct {
	// Width is the register width in bits (16, 32 or 64).
	Width uint
	// Poly is the reflected generator polynomial.
	Poly uint64
	// Init is the initial register value.
	Init uint64
	// XorOut is XORed into the register to produce the final digest.
	XorOut uint64
	// Name identifies the algorithm in diagnostics.
	Name string
}

// Standard parameter sets.  Check values ("123456789") are asserted in the
// package tests against the published catalogue values.
var (
	// CRC16 is CRC-16/ARC: poly 0x8005 (reflected 0xA001).
	CRC16 = Params{Width: 16, Poly: 0xA001, Init: 0, XorOut: 0, Name: "CRC-16/ARC"}
	// CRC32 is the IEEE 802.3 CRC-32 used throughout the paper's
	// evaluation ("32-bit CRC is generally large enough to avoid
	// collision", §6).
	CRC32 = Params{Width: 32, Poly: 0xEDB88320, Init: 0xFFFFFFFF, XorOut: 0xFFFFFFFF, Name: "CRC-32/IEEE"}
	// CRC64 is CRC-64/XZ (reflected ECMA-182).
	CRC64 = Params{Width: 64, Poly: 0xC96C5795D7870F42, Init: ^uint64(0), XorOut: ^uint64(0), Name: "CRC-64/XZ"}
)

// ByWidth returns the standard parameter set for a register width.
func ByWidth(width uint) (Params, error) {
	switch width {
	case 16:
		return CRC16, nil
	case 32:
		return CRC32, nil
	case 64:
		return CRC64, nil
	default:
		return Params{}, fmt.Errorf("crc: unsupported width %d (want 16, 32 or 64)", width)
	}
}

// mask returns the width-bit all-ones mask for p.
func (p Params) mask() uint64 {
	if p.Width >= 64 {
		return ^uint64(0)
	}
	return (1 << p.Width) - 1
}

// Hasher is a streaming CRC unit.  It mirrors the accumulate-as-you-go
// property the paper highlights: the unit "does not need to have all the
// input data to start hashing", which lets the hardware hide hash latency
// behind the feeding ld_crc/reg_crc instructions.
type Hasher interface {
	// Reset returns the unit to its initial state.
	Reset()
	// Feed accumulates the bytes of p into the running hash, in order.
	Feed(p []byte)
	// Sum returns the current digest without disturbing the state.
	Sum() uint64
	// Params reports the algorithm parameters of the unit.
	Params() Params
}

// Checksum is a convenience helper that hashes data in one shot with a
// table-driven unit.
func Checksum(p Params, data []byte) uint64 {
	h := NewTable(p)
	h.Feed(data)
	return h.Sum()
}

// SoftwareCost models the per-input instruction cost of computing the CRC
// in software with the 8-bit-parallel algorithm, as accounted by the
// paper's software-LUT baseline: one AND, one LOAD and one XOR per byte.
func SoftwareCost(inputBytes int) int {
	const insnsPerByte = 3 // AND + LOAD + XOR
	return insnsPerByte * inputBytes
}
