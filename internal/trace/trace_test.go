package trace

import (
	"math"
	"testing"

	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// buildAxpy builds: func axpy(base i64, n i32) — y[i] = 2*x[i] + 1 over an
// interleaved array, exercising loads, stores, arithmetic and a loop.
func buildAxpy() *ir.Program {
	p := ir.NewProgram("axpy")
	f := p.NewFunc("axpy", []ir.Type{ir.I64, ir.I32}, nil)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	done := f.NewBlock("done")

	bu := ir.At(f, entry)
	i := bu.ConstI32(0)
	addr := bu.Mov(ir.I64, f.Params[0])
	eight := bu.ConstI64(8)
	two := bu.ConstF32(2)
	one := bu.ConstF32(1)
	inc := bu.ConstI32(1)
	bu.Jmp(loop)

	bu.SetBlock(loop)
	c := bu.Bin(ir.CmpLT, ir.I32, i, f.Params[1])
	bu.Br(c, body, done)

	bu.SetBlock(body)
	x := bu.Load(ir.F32, addr, 0)
	t := bu.Bin(ir.FMul, ir.F32, x, two)
	y := bu.Bin(ir.FAdd, ir.F32, t, one)
	bu.Store(ir.F32, addr, 4, y)
	i2 := bu.Bin(ir.Add, ir.I32, i, inc)
	bu.MovTo(ir.I32, i, i2)
	a2 := bu.Bin(ir.Add, ir.I64, addr, eight)
	bu.MovTo(ir.I64, addr, a2)
	bu.Jmp(loop)

	bu.SetBlock(done)
	bu.Ret()
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func runTraced(t *testing.T, n int, maxEntries int) *Recorder {
	t.Helper()
	rec := NewRecorder(maxEntries)
	cfg := cpu.DefaultConfig()
	cfg.Hook = rec.Hook()
	img := cpu.NewMemory(1 << 16)
	base := img.Alloc(n * 8)
	for i := 0; i < n; i++ {
		img.SetF32(base+uint64(i*8), float32(i))
	}
	m, err := cpu.New(buildAxpy(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(base, uint64(uint32(n))); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesAllInstructions(t *testing.T) {
	rec := runTraced(t, 4, 0)
	// entry: 6 + jmp = 7; per iteration: loop(2) + body(9) = 11;
	// final loop check: 2; done: ret = 1.
	want := 7 + 4*11 + 2 + 1
	if got := len(rec.Entries()); got != want {
		t.Errorf("trace length = %d, want %d", got, want)
	}
	if rec.Truncated() {
		t.Error("trace reported truncated")
	}
}

func TestRegisterDependencies(t *testing.T) {
	rec := runTraced(t, 1, 0)
	es := rec.Entries()
	// Find the FMul: it must depend on the Load and the const 2.
	for i, e := range es {
		if e.Op == ir.FMul {
			if len(e.Deps) != 2 {
				t.Fatalf("fmul deps = %d, want 2", len(e.Deps))
			}
			sawLoad := false
			for _, d := range e.Deps {
				if es[d].Op == ir.Load {
					sawLoad = true
				}
			}
			if !sawLoad {
				t.Errorf("fmul at %d does not depend on the load", i)
			}
			return
		}
	}
	t.Fatal("no fmul in trace")
}

func TestColdLoadIsLiveIn(t *testing.T) {
	rec := runTraced(t, 1, 0)
	for _, e := range rec.Entries() {
		if e.Op == ir.Load {
			if len(e.Deps) != 1 { // address register only
				t.Errorf("cold load deps = %v", e.Deps)
			}
			found := false
			for _, k := range e.LiveIns {
				if k&(1<<62) != 0 {
					found = true
				}
			}
			if !found {
				t.Error("cold load has no memory live-in key")
			}
			return
		}
	}
	t.Fatal("no load in trace")
}

func TestStoreToLoadDependency(t *testing.T) {
	// Build: store then load same address — the load must depend on
	// the store.
	p := ir.NewProgram("sl")
	f := p.NewFunc("sl", []ir.Type{ir.I64}, []ir.Type{ir.F32})
	bb := f.NewBlock("entry")
	bu := ir.At(f, bb)
	v := bu.ConstF32(3.5)
	bu.Store(ir.F32, f.Params[0], 0, v)
	r := bu.Load(ir.F32, f.Params[0], 0)
	bu.Ret(r)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	cfg := cpu.DefaultConfig()
	cfg.Hook = rec.Hook()
	img := cpu.NewMemory(1024)
	base := img.Alloc(8)
	m, _ := cpu.New(p, img, cfg)
	res, err := m.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float32frombits(uint32(res.Rets[0])); got != 3.5 {
		t.Fatalf("load after store = %v", got)
	}
	es := rec.Entries()
	var loadEntry *Entry
	var storeIdx int32 = -1
	for i := range es {
		if es[i].Op == ir.Store {
			storeIdx = int32(i)
		}
		if es[i].Op == ir.Load {
			loadEntry = &es[i]
		}
	}
	if loadEntry == nil || storeIdx < 0 {
		t.Fatal("missing load/store entries")
	}
	dep := false
	for _, d := range loadEntry.Deps {
		if d == storeIdx {
			dep = true
		}
	}
	if !dep {
		t.Errorf("load deps %v do not include store %d", loadEntry.Deps, storeIdx)
	}
}

func TestParamsAreLiveIns(t *testing.T) {
	rec := runTraced(t, 1, 0)
	// The CmpLT uses param n: must carry a param live-in key.
	for _, e := range rec.Entries() {
		if e.Op == ir.CmpLT {
			found := false
			for _, k := range e.LiveIns {
				if k&(1<<63) != 0 {
					found = true
				}
			}
			if !found {
				t.Error("cmp on parameter has no param live-in")
			}
			return
		}
	}
	t.Fatal("no cmp in trace")
}

func TestControlMarked(t *testing.T) {
	rec := runTraced(t, 2, 0)
	for _, e := range rec.Entries() {
		isCtl := e.Op == ir.Br || e.Op == ir.Jmp || e.Op == ir.Ret || e.Op == ir.Call
		if e.Control != isCtl {
			t.Errorf("op %s Control = %v", e.Op, e.Control)
		}
	}
}

func TestTruncation(t *testing.T) {
	rec := runTraced(t, 100, 50)
	if !rec.Truncated() {
		t.Error("bounded recorder did not report truncation")
	}
	if len(rec.Entries()) != 50 {
		t.Errorf("entries = %d, want 50", len(rec.Entries()))
	}
}

func TestKeySpacesDisjoint(t *testing.T) {
	p := ParamKey(3, 7)
	m := MemKey(0xDEAD)
	if p&(1<<63) == 0 || m&(1<<62) == 0 || p == m {
		t.Errorf("key spaces overlap: %#x vs %#x", p, m)
	}
	if ParamKey(3, 7) == ParamKey(4, 7) || ParamKey(3, 7) == ParamKey(3, 8) {
		t.Error("param keys not unique per frame/register")
	}
}
