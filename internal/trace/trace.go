// Package trace records the dynamic instruction stream of a simulated
// program together with its true data dependencies.  It stands in for the
// paper's LLVM-Tracer step (Fig. 5 ①): the recorder attaches to the CPU's
// execution hook and emits one entry per executed instruction, with edges
// to the entries that produced its register and memory operands.
//
// The resulting trace feeds internal/dddg, which constructs the dynamic
// data dependence graph and searches it for memoization candidates.
package trace

import (
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// Entry is one dynamic instruction.
type Entry struct {
	// SID is the program-unique static instruction id.
	SID int32
	// Op is the opcode.
	Op ir.Op
	// Weight is the estimated latency used as the DDDG vertex weight.
	Weight int32
	// Deps are the indices of earlier entries whose results this entry
	// consumes (register true-dependencies and load-after-store memory
	// dependencies).
	Deps []int32
	// LiveIns are synthetic keys for external inputs with no producer
	// in the trace: function parameters and loads from untouched
	// memory (the program's input arrays).
	LiveIns []uint64
	// Control marks instructions excluded from the DDDG (branches,
	// calls, returns), which carry no data values.
	Control bool
}

// Live-in key spaces.  The top bits discriminate parameter registers from
// cold memory addresses so they can never alias.
const (
	liveInParam = uint64(1) << 63
	liveInMem   = uint64(1) << 62
)

// ParamKey builds the live-in key of register r in call frame f.
func ParamKey(frame uint64, r ir.Reg) uint64 {
	return liveInParam | frame<<20 | uint64(uint32(r))&0xFFFFF
}

// MemKey builds the live-in key of a cold load address.
func MemKey(addr uint64) uint64 { return liveInMem | addr }

// Recorder captures a bounded dynamic trace.
type Recorder struct {
	// MaxEntries bounds the trace; recording stops silently once
	// reached (the paper analyzes sample inputs, not full runs).
	MaxEntries int

	entries []Entry
	full    bool

	// lastDef maps {frame, reg} to the entry that last defined it.
	lastDef map[regKey]int32
	// lastStore maps an element address to the entry that last stored
	// to it.
	lastStore map[uint64]int32
	// scratch backs Instr.Uses/Defs decoding; per-recorder so that
	// recorders on concurrent simulations never share it.
	scratch [8]ir.Reg
}

type regKey struct {
	frame uint64
	reg   ir.Reg
}

// NewRecorder returns a recorder bounded to maxEntries (0 means a default
// of 200k entries).
func NewRecorder(maxEntries int) *Recorder {
	if maxEntries <= 0 {
		maxEntries = 200_000
	}
	return &Recorder{
		MaxEntries: maxEntries,
		lastDef:    make(map[regKey]int32),
		lastStore:  make(map[uint64]int32),
	}
}

// Entries returns the recorded trace.
func (r *Recorder) Entries() []Entry { return r.entries }

// Truncated reports whether the trace hit MaxEntries.
func (r *Recorder) Truncated() bool { return r.full }

// Hook returns the cpu.Hook that feeds this recorder.
func (r *Recorder) Hook() cpu.Hook { return r.observe }

func (r *Recorder) observe(e cpu.ExecInfo) {
	if len(r.entries) >= r.MaxEntries {
		r.full = true
		return
	}
	in := e.Instr
	id := int32(len(r.entries))
	ent := Entry{
		SID:     int32(in.SID),
		Op:      in.Op,
		Weight:  int32(cpu.Weight(in.Op)),
		Control: in.Op.IsBranch() || in.Op == ir.Call,
	}

	// Register dependencies.
	for _, u := range in.Uses(r.scratch[:0]) {
		if def, ok := r.lastDef[regKey{e.Frame, u}]; ok {
			ent.Deps = append(ent.Deps, def)
		} else {
			ent.LiveIns = append(ent.LiveIns, ParamKey(e.Frame, u))
		}
	}
	// Memory dependencies.
	if e.HasAddr {
		switch in.Op {
		case ir.Load, ir.LdCRC:
			if def, ok := r.lastStore[e.Addr]; ok {
				ent.Deps = append(ent.Deps, def)
			} else {
				ent.LiveIns = append(ent.LiveIns, MemKey(e.Addr))
			}
		case ir.Store:
			r.lastStore[e.Addr] = id
		}
	}
	// Register definitions.
	for _, d := range in.Defs(r.scratch[:0]) {
		r.lastDef[regKey{e.Frame, d}] = id
	}
	// A call's results are produced inside the callee frame; the
	// callee's ret entry defines the caller's result registers.  Model
	// this conservatively: the call entry defines them, and the callee
	// body links through parameters as live-ins of that frame.  (The
	// candidate search never crosses control vertices anyway.)
	if in.Op == ir.Call {
		for _, d := range in.Rets {
			r.lastDef[regKey{e.Frame, d}] = id
		}
	}

	r.entries = append(r.entries, ent)
}
