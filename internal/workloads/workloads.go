// Package workloads re-implements the ten benchmarks of the paper's
// evaluation (Table 2): seven from AxBench (Blackscholes, FFT,
// Inversek2j, Jmeint, JPEG, K-means, Sobel) and three from Rodinia
// (Hotspot, LavaMD, SRAD).  Each workload provides
//
//   - an unmemoized IR program (driver loops + kernel functions),
//   - the memoization-region specs matching Table 2's input sizes and
//     truncation levels,
//   - a deterministic synthetic input generator (the original suites'
//     datasets are not redistributable; see DESIGN.md for the per-input
//     substitutions and why they preserve the value-locality that
//     memoization exploits), and
//   - a pure-Go golden implementation whose float32 arithmetic mirrors
//     the IR kernel operation-for-operation, used for output-quality
//     scoring (Eq. 2 or misclassification rate).
package workloads

import (
	"fmt"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// Instance is one staged run of a workload: a populated memory image plus
// everything the harness needs to launch the program and score its output.
type Instance struct {
	// Args are the entry-function arguments.
	Args []uint64
	// N is the number of kernel invocations the run performs (used to
	// sanity-check lookup counts).
	N int
	// Outputs reads the program's output elements after a run.
	Outputs func(img *cpu.Memory) []float64
	// Golden holds the pure-Go exact outputs.
	Golden []float64
	// OutputsBool/GoldenBool replace Outputs/Golden for workloads
	// scored by misclassification rate (Jmeint).
	OutputsBool func(img *cpu.Memory) []bool
	GoldenBool  []bool
}

// Workload is one benchmark.
type Workload struct {
	// Name, Domain, Description reproduce the Table 2 metadata.
	Name        string
	Domain      string
	Description string
	// InputBytes is Table 2's total memoization input size per LUT,
	// formatted as in the paper (e.g. "24" or "(16, 16)").
	InputBytes string
	// TruncBits is the default per-region truncation (Table 2's last
	// column).
	TruncBits []uint8
	// ImageOutput selects the 1% error bound of §5 instead of 0.1%.
	ImageOutput bool
	// Misclass selects the misclassification-rate quality metric.
	Misclass bool
	// Build constructs the unmemoized program.
	Build func() *ir.Program
	// Regions returns the memoization-region specs; trunc overrides
	// the per-region truncation when non-nil (one entry per region).
	Regions func(trunc []uint8) []compiler.Region
	// Setup stages inputs for the given problem scale (1 = test scale)
	// into img and returns the run instance.
	Setup func(img *cpu.Memory, scale int) *Instance
	// MemBytes is the memory-image size needed at a scale.
	MemBytes func(scale int) int
	// PaperScale is the scale at which the synthetic input reaches the
	// paper's dataset size (Table 2, column 4), for -scale sweeps.
	PaperScale int
}

// regionTrunc resolves the effective truncation vector: override if
// provided, defaults otherwise.
func regionTrunc(defaults []uint8, override []uint8) []uint8 {
	if override == nil {
		return defaults
	}
	if len(override) != len(defaults) {
		panic(fmt.Sprintf("workloads: %d truncation overrides for %d regions", len(override), len(defaults)))
	}
	return override
}

// All returns the ten benchmarks in Table 2 order.
func All() []*Workload {
	return []*Workload{
		Blackscholes(),
		FFT(),
		Inversek2j(),
		Jmeint(),
		JPEG(),
		KMeans(),
		Sobel(),
		Hotspot(),
		LavaMD(),
		SRAD(),
	}
}

// ByName returns the named workload or an error listing valid names.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	names := make([]string, 0, 10)
	for _, w := range All() {
		names = append(names, w.Name)
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, names)
}
