package workloads

import (
	"testing"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/memo"
	"axmemo/internal/quality"
)

// runOne executes a workload at scale 1, optionally memoized with the
// given unit config and truncation override, and returns the instance and
// final stats plus outputs.
func runOne(t *testing.T, w *Workload, mc *memo.Config, trunc []uint8) (*Instance, cpu.Stats, []float64, []bool) {
	t.Helper()
	prog := w.Build()
	cfg := cpu.DefaultConfig()
	var kinds map[uint8]memo.OutputKind
	if mc != nil {
		regions := w.Regions(trunc)
		if err := compiler.Transform(prog, regions); err != nil {
			t.Fatalf("%s: transform: %v", w.Name, err)
		}
		full, k, err := compiler.MemoConfigFor(prog, regions, *mc)
		if err != nil {
			t.Fatalf("%s: memo config: %v", w.Name, err)
		}
		kinds = k
		cfg.Memo = &full
	}
	img := cpu.NewMemory(w.MemBytes(1))
	inst := w.Setup(img, 1)
	m, err := cpu.New(prog, img, cfg)
	if err != nil {
		t.Fatalf("%s: new machine: %v", w.Name, err)
	}
	for lut, kind := range kinds {
		m.MemoUnit().SetOutputKind(lut, kind)
	}
	res, err := m.Run(inst.Args...)
	if err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	var outs []float64
	var outsB []bool
	if w.Misclass {
		outsB = inst.OutputsBool(img)
	} else {
		outs = inst.Outputs(img)
	}
	return inst, res.Stats, outs, outsB
}

func defaultUnit() *memo.Config {
	mc := memo.DefaultConfig()
	return &mc
}

func bigUnit() *memo.Config {
	mc := memo.DefaultConfig()
	mc.L2 = &memo.LUTConfig{SizeBytes: 512 << 10, DataBytes: 4, HitLatency: 13}
	return &mc
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registry has %d workloads, want 10", len(all))
	}
	wantOrder := []string{"blackscholes", "fft", "inversek2j", "jmeint", "jpeg",
		"kmeans", "sobel", "hotspot", "lavamd", "srad"}
	for i, w := range all {
		if w.Name != wantOrder[i] {
			t.Errorf("workload %d = %s, want %s (Table 2 order)", i, w.Name, wantOrder[i])
		}
		if w.Domain == "" || w.Description == "" || w.InputBytes == "" {
			t.Errorf("%s: missing Table 2 metadata", w.Name)
		}
		if len(w.TruncBits) == 0 {
			t.Errorf("%s: no truncation defaults", w.Name)
		}
	}
	if _, err := ByName("sobel"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestBaselineMatchesGolden: the unmemoized simulated program must agree
// with the pure-Go golden implementation to float32 rounding noise.
func TestBaselineMatchesGolden(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, st, outs, outsB := runOne(t, w, nil, nil)
			if w.Misclass {
				mc, err := quality.Misclassification(outsB, inst.GoldenBool)
				if err != nil {
					t.Fatal(err)
				}
				if mc != 0 {
					t.Errorf("baseline misclassification = %v, want 0", mc)
				}
			} else {
				er, err := quality.OutputError(outs, inst.Golden)
				if err != nil {
					t.Fatal(err)
				}
				if er > 1e-9 {
					t.Errorf("baseline E_r vs golden = %g, want ≤ 1e-9", er)
				}
			}
			if st.MemoInsns != 0 {
				t.Errorf("baseline executed %d memo instructions", st.MemoInsns)
			}
			if st.Cycles == 0 || st.Insns == 0 {
				t.Error("no work simulated")
			}
		})
	}
}

// TestMemoizedQualityAndActivity: memoized runs must look up once per
// kernel invocation and keep output quality within the paper's bound for
// the Table 2 truncation levels.
func TestMemoizedQualityAndActivity(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, st, outs, outsB := runOne(t, w, bigUnit(), nil)
			if st.Memo.Lookups != uint64(inst.N) {
				t.Errorf("lookups = %d, want %d (one per kernel invocation)", st.Memo.Lookups, inst.N)
			}
			var q float64
			if w.Misclass {
				var err error
				q, err = quality.Misclassification(outsB, inst.GoldenBool)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				var err error
				q, err = quality.OutputError(outs, inst.Golden)
				if err != nil {
					t.Fatal(err)
				}
			}
			bound := compiler.ErrorBound(w.ImageOutput)
			// Allow headroom over the compile-time profiling bound:
			// the paper reports final whole-application errors up to
			// ~1% (Fig. 10a).
			if q > 5*bound {
				t.Errorf("quality loss = %g, want ≤ %g", q, 5*bound)
			}
			if st.Monitor.Disabled {
				t.Error("quality monitor disabled memoization at Table 2 truncation levels")
			}
		})
	}
}

// TestHitRateShape checks the cross-benchmark shape the paper reports:
// Blackscholes and FFT have high hit rates, Jmeint has essentially none.
func TestHitRateShape(t *testing.T) {
	rates := map[string]float64{}
	for _, w := range All() {
		_, st, _, _ := runOne(t, w, bigUnit(), nil)
		rates[w.Name] = st.Memo.HitRate()
		t.Logf("%-14s hit rate %.3f", w.Name, st.Memo.HitRate())
	}
	if rates["blackscholes"] < 0.80 {
		t.Errorf("blackscholes hit rate = %.3f, want ≥ 0.80", rates["blackscholes"])
	}
	if rates["fft"] < 0.60 {
		t.Errorf("fft hit rate = %.3f, want ≥ 0.60", rates["fft"])
	}
	if rates["jmeint"] > 0.05 {
		t.Errorf("jmeint hit rate = %.3f, want ≈ 0 (paper: < 0.1%%)", rates["jmeint"])
	}
	for _, name := range []string{"inversek2j", "kmeans", "sobel", "hotspot", "srad", "lavamd"} {
		if rates[name] < 0.25 {
			t.Errorf("%s hit rate = %.3f, want ≥ 0.25 (approximable workloads must show reuse)", name, rates[name])
		}
	}
}

// TestSpeedupShape checks who wins: most benchmarks speed up with the
// large configuration; Jmeint must not gain.
func TestSpeedupShape(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, base, _, _ := runOne(t, w, nil, nil)
			_, mem, _, _ := runOne(t, w, bigUnit(), nil)
			speedup := float64(base.Cycles) / float64(mem.Cycles)
			t.Logf("%s speedup %.2fx (insns %d -> %d)", w.Name, speedup, base.Insns, mem.Insns)
			switch w.Name {
			case "jmeint":
				if speedup > 1.05 {
					t.Errorf("jmeint speedup = %.2f, want ≈ or below 1 (paper: no gain)", speedup)
				}
			case "blackscholes":
				if speedup < 2 {
					t.Errorf("blackscholes speedup = %.2f, want ≥ 2", speedup)
				}
			default:
				if speedup < 0.9 {
					t.Errorf("%s memoization slowed execution %.2fx beyond tolerance", w.Name, speedup)
				}
			}
		})
	}
}

// TestTruncationRaisesHitRate: the Fig. 11 effect — for workloads with
// non-zero Table 2 truncation, disabling it must drop the hit rate.
func TestTruncationRaisesHitRate(t *testing.T) {
	for _, name := range []string{"inversek2j", "jpeg", "kmeans", "sobel", "srad"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, withT, _, _ := runOne(t, w, bigUnit(), nil)
		zeros := make([]uint8, len(w.TruncBits))
		_, withoutT, _, _ := runOne(t, w, bigUnit(), zeros)
		if withT.Memo.HitRate() <= withoutT.Memo.HitRate() {
			t.Errorf("%s: truncation does not raise hit rate (%.3f vs %.3f)",
				name, withT.Memo.HitRate(), withoutT.Memo.HitRate())
		}
	}
}

// TestKMeansInvalidates: the epoch mechanism must clear the LUT between
// iterations.
func TestKMeansInvalidates(t *testing.T) {
	w, _ := ByName("kmeans")
	_, st, _, _ := runOne(t, w, defaultUnit(), nil)
	if st.Memo.Invalidates != kmIters {
		t.Errorf("invalidates = %d, want %d (one per iteration)", st.Memo.Invalidates, kmIters)
	}
}

// TestLargerLUTNeverHurtsHitRate: Fig. 9's monotonicity.
func TestLargerLUTNeverHurtsHitRate(t *testing.T) {
	small := memo.DefaultConfig()
	small.L1.SizeBytes = 4 << 10
	for _, name := range []string{"blackscholes", "inversek2j", "sobel"} {
		w, _ := ByName(name)
		sCfg := small
		_, stS, _, _ := runOne(t, w, &sCfg, nil)
		_, stL, _, _ := runOne(t, w, bigUnit(), nil)
		if stL.Memo.HitRate()+0.01 < stS.Memo.HitRate() {
			t.Errorf("%s: larger LUT lowered hit rate (%.3f -> %.3f)",
				name, stS.Memo.HitRate(), stL.Memo.HitRate())
		}
	}
}

func TestSyntheticImageProperties(t *testing.T) {
	img := SyntheticImage(32, 32, 1)
	if len(img) != 1024 {
		t.Fatalf("image size %d", len(img))
	}
	for i, v := range img {
		if v < 0 || v > 255 || v != floorf(v) {
			t.Fatalf("pixel %d = %v not an 8-bit level", i, v)
		}
	}
	// Determinism.
	img2 := SyntheticImage(32, 32, 1)
	for i := range img {
		if img[i] != img2[i] {
			t.Fatal("synthetic image not deterministic")
		}
	}
	// Different seeds differ.
	img3 := SyntheticImage(32, 32, 2)
	same := 0
	for i := range img {
		if img[i] == img3[i] {
			same++
		}
	}
	if same == len(img) {
		t.Error("different seeds produced identical images")
	}
}

func TestSyntheticRGB(t *testing.T) {
	r, g, b := SyntheticRGBImage(16, 16, 3)
	if len(r) != 256 || len(g) != 256 || len(b) != 256 {
		t.Fatal("bad channel sizes")
	}
	for i := range r {
		for _, v := range []float32{r[i], g[i], b[i]} {
			if v < 0 || v > 255 {
				t.Fatalf("channel value %v out of range", v)
			}
		}
	}
}

func TestTable2Metadata(t *testing.T) {
	want := map[string]struct {
		bytes string
		trunc []uint8
	}{
		"blackscholes": {"24", []uint8{0}},
		"fft":          {"4", []uint8{0}},
		"inversek2j":   {"8", []uint8{8}},
		"jmeint":       {"36", []uint8{6}},
		"jpeg":         {"(16, 16)", []uint8{2, 7}},
		"kmeans":       {"12", []uint8{16}},
		"sobel":        {"36", []uint8{16}},
		"hotspot":      {"16", []uint8{8}},
		"lavamd":       {"12", []uint8{0}},
		"srad":         {"24", []uint8{18}},
	}
	for _, w := range All() {
		exp := want[w.Name]
		if w.InputBytes != exp.bytes {
			t.Errorf("%s input bytes = %s, want %s", w.Name, w.InputBytes, exp.bytes)
		}
		if len(w.TruncBits) != len(exp.trunc) {
			t.Errorf("%s trunc = %v, want %v", w.Name, w.TruncBits, exp.trunc)
			continue
		}
		for i := range exp.trunc {
			if w.TruncBits[i] != exp.trunc[i] {
				t.Errorf("%s trunc = %v, want %v", w.Name, w.TruncBits, exp.trunc)
			}
		}
	}
}

// TestPaperScaleMetadata: every benchmark declares the scale at which its
// synthetic input reaches the paper's dataset size.
func TestPaperScaleMetadata(t *testing.T) {
	for _, w := range All() {
		if w.PaperScale < 1 {
			t.Errorf("%s: PaperScale = %d", w.Name, w.PaperScale)
		}
	}
}

// TestQualityMonitorTripsOnAbsurdTruncation: failure injection — with a
// recklessly aggressive truncation the sampled comparisons must exceed
// the 10%/10% rule and the monitor must disable memoization (§6's safety
// mechanism), instead of silently shipping garbage at full speed.
func TestQualityMonitorTripsOnAbsurdTruncation(t *testing.T) {
	w, err := ByName("inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	absurd := []uint8{28} // fold almost the whole mantissa and exponent
	mc := memo.DefaultConfig()
	mc.L2 = &memo.LUTConfig{SizeBytes: 512 << 10, DataBytes: 4, HitLatency: 13}
	// The paper's 1-in-100 sampling over 100-comparison windows needs
	// ~10k hits per decision; sample densely so the short test run
	// reaches a decision window.  The 10%/10% disable rule itself is
	// unchanged.
	mc.Monitor.SamplePeriod = 5
	mc.Monitor.WindowSize = 40
	_, st, _, _ := runOne(t, w, &mc, absurd)
	if !st.Monitor.Disabled {
		t.Errorf("monitor did not trip: %+v (hit rate %.3f)", st.Monitor, st.Memo.HitRate())
	}
	// And the run must have *stopped* hitting after the disable.
	if st.Memo.HitRate() > 0.9 {
		t.Errorf("hit rate %.3f after disable; memoization kept running", st.Memo.HitRate())
	}
}
