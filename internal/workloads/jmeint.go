package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// Jmeint detects whether two 3D triangles intersect (AxBench).  The
// memoized kernel takes the nine coordinates of one triangle — 36 bytes,
// matching Table 2 — tested against a canonical reference triangle
// {(0,0,0), (1,0,0), (0,1,0)}; the input generator expresses every pair
// in the first triangle's frame (see DESIGN.md).  Inputs are essentially
// random, so the paper's key negative result reproduces: the LUT hit
// rate is ≈ 0 and AxMemo yields no speedup.  Quality is the
// misclassification rate.
func Jmeint() *Workload {
	return &Workload{
		Name:        "jmeint",
		Domain:      "3D-Gaming",
		Description: "Detects the intersection of two triangles",
		InputBytes:  "36",
		TruncBits:   []uint8{6},
		Misclass:    true,
		PaperScale:  72,
		Build:       buildJmeint,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{6}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "tritri",
				LUT:         0,
				InputParams: []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
				ParamTrunc:  []uint8{t, t, t, t, t, t, t, t, t},
			}}
		},
		Setup:    setupJmeint,
		MemBytes: func(scale int) int { return 1<<16 + jmCount(scale)*40 },
	}
}

func jmCount(scale int) int { return 2000 * scale }

// orient2 is the 2D orientation determinant (b−a)×(c−a).
func orient2(ax, ay, bx, by, cx, cy float32) float32 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// segCross reports whether segments PQ and CD intersect (proper or
// touching).
func segCross(px, py, qx, qy, cx, cy, dx, dy float32) bool {
	o1 := orient2(px, py, qx, qy, cx, cy)
	o2 := orient2(px, py, qx, qy, dx, dy)
	o3 := orient2(cx, cy, dx, dy, px, py)
	o4 := orient2(cx, cy, dx, dy, qx, qy)
	return o1*o2 <= 0 && o3*o4 <= 0
}

// inCanon reports whether 2D point p lies in the canonical triangle
// {(0,0),(1,0),(0,1)}.
func inCanon(px, py float32) bool {
	return px >= 0 && py >= 0 && px+py <= 1
}

// tritriGold mirrors the IR kernel in float32: does the triangle with the
// given vertices intersect the canonical triangle in the z=0 plane?
func tritriGold(v [9]float32) bool {
	d0, d1, d2 := v[2], v[5], v[8]
	c01 := d0*d1 < 0
	c12 := d1*d2 < 0
	c20 := d2*d0 < 0
	nc := 0
	for _, c := range []bool{c01, c12, c20} {
		if c {
			nc++
		}
	}
	if nc < 2 {
		return false // no plane crossing (coplanar treated as miss)
	}
	cross := func(ax, ay, az, bx, by, bz float32) (float32, float32) {
		t := az / (az - bz)
		return ax + t*(bx-ax), ay + t*(by-ay)
	}
	p01x, p01y := cross(v[0], v[1], v[2], v[3], v[4], v[5])
	p12x, p12y := cross(v[3], v[4], v[5], v[6], v[7], v[8])
	p20x, p20y := cross(v[6], v[7], v[8], v[0], v[1], v[2])
	var px, py, qx, qy float32
	switch {
	case c01 && c12:
		px, py, qx, qy = p01x, p01y, p12x, p12y
	case c01 && c20:
		px, py, qx, qy = p01x, p01y, p20x, p20y
	default:
		px, py, qx, qy = p12x, p12y, p20x, p20y
	}
	if inCanon(px, py) || inCanon(qx, qy) {
		return true
	}
	return segCross(px, py, qx, qy, 0, 0, 1, 0) ||
		segCross(px, py, qx, qy, 1, 0, 0, 1) ||
		segCross(px, py, qx, qy, 0, 1, 0, 0)
}

func setupJmeint(img *cpu.Memory, scale int) *Instance {
	rng := rand.New(rand.NewSource(23))
	n := jmCount(scale)
	src := img.Alloc(n * 36)
	dst := img.Alloc(n * 4)
	golden := make([]bool, n)
	for i := 0; i < n; i++ {
		var v [9]float32
		for j := range v {
			v[j] = float32(rng.Float64()*2 - 0.5)
		}
		for j, val := range v {
			img.SetF32(src+uint64(i*36+j*4), val)
		}
		golden[i] = tritriGold(v)
	}
	return &Instance{
		Args:       []uint64{src, dst, uint64(uint32(n))},
		N:          n,
		GoldenBool: golden,
		OutputsBool: func(img *cpu.Memory) []bool {
			out := make([]bool, n)
			for i := range out {
				out[i] = img.I32(dst+uint64(i*4)) != 0
			}
			return out
		},
	}
}

func buildJmeint() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel: tritri(x0,y0,z0, x1,y1,z1, x2,y2,z2) -> i32.
	types := make([]ir.Type, 9)
	for i := range types {
		types[i] = ir.F32
	}
	k := p.NewFunc("tritri", types, []ir.Type{ir.I32})
	entry := k.NewBlock("entry")
	selA := k.NewBlock("sel.c01c12")
	selTryB := k.NewBlock("sel.tryB")
	selB := k.NewBlock("sel.c01c20")
	selC := k.NewBlock("sel.c12c20")
	overlap := k.NewBlock("overlap")
	missB := k.NewBlock("miss")

	bu := ir.At(k, entry)
	v := k.Params
	x0, y0, z0 := v[0], v[1], v[2]
	x1, y1, z1 := v[3], v[4], v[5]
	x2, y2, z2 := v[6], v[7], v[8]
	zero := bu.ConstF32(0)
	c01 := bu.Bin(ir.CmpLT, ir.F32, bu.Bin(ir.FMul, ir.F32, z0, z1), zero)
	c12 := bu.Bin(ir.CmpLT, ir.F32, bu.Bin(ir.FMul, ir.F32, z1, z2), zero)
	c20 := bu.Bin(ir.CmpLT, ir.F32, bu.Bin(ir.FMul, ir.F32, z2, z0), zero)
	nc := bu.Bin(ir.Add, ir.I32, bu.Bin(ir.Add, ir.I32, c01, c12), c20)
	two := bu.ConstI32(2)
	anyCross := bu.Bin(ir.CmpGE, ir.I32, nc, two)

	// Edge-plane crossing points (computed unconditionally; unused
	// ones may divide by ~0, which is harmless in FP).
	crossPt := func(ax, ay, az, bx, by, bz ir.Reg) (ir.Reg, ir.Reg) {
		t := bu.Bin(ir.FDiv, ir.F32, az, bu.Bin(ir.FSub, ir.F32, az, bz))
		px := bu.Bin(ir.FAdd, ir.F32, ax, bu.Bin(ir.FMul, ir.F32, t, bu.Bin(ir.FSub, ir.F32, bx, ax)))
		py := bu.Bin(ir.FAdd, ir.F32, ay, bu.Bin(ir.FMul, ir.F32, t, bu.Bin(ir.FSub, ir.F32, by, ay)))
		return px, py
	}
	p01x, p01y := crossPt(x0, y0, z0, x1, y1, z1)
	p12x, p12y := crossPt(x1, y1, z1, x2, y2, z2)
	p20x, p20y := crossPt(x2, y2, z2, x0, y0, z0)

	// Common registers for the selected segment endpoints.
	px := k.NewReg()
	py := k.NewReg()
	qx := k.NewReg()
	qy := k.NewReg()

	sel01 := bu.Bin(ir.And, ir.I32, anyCross, c01)
	bothA := bu.Bin(ir.And, ir.I32, sel01, c12)
	bu.Br(bothA, selA, selTryB)

	bu.SetBlock(selA)
	bu.MovTo(ir.F32, px, p01x)
	bu.MovTo(ir.F32, py, p01y)
	bu.MovTo(ir.F32, qx, p12x)
	bu.MovTo(ir.F32, qy, p12y)
	bu.Jmp(overlap)

	bu.SetBlock(selTryB)
	cnd := bu.Bin(ir.And, ir.I32, bu.Bin(ir.And, ir.I32, anyCross, c01), c20)
	bu.Br(cnd, selB, selC)

	bu.SetBlock(selB)
	bu.MovTo(ir.F32, px, p01x)
	bu.MovTo(ir.F32, py, p01y)
	bu.MovTo(ir.F32, qx, p20x)
	bu.MovTo(ir.F32, qy, p20y)
	bu.Jmp(overlap)

	bu.SetBlock(selC)
	// Either {c12, c20} crossing, or no crossing at all.
	bu.MovTo(ir.F32, px, p12x)
	bu.MovTo(ir.F32, py, p12y)
	bu.MovTo(ir.F32, qx, p20x)
	bu.MovTo(ir.F32, qy, p20y)
	bu.Br(anyCross, overlap, missB)

	bu.SetBlock(overlap)
	one := bu.ConstF32(1)
	zf := bu.ConstF32(0)
	// inside(p): px ≥ 0 ∧ py ≥ 0 ∧ px+py ≤ 1.
	inside := func(ax, ay ir.Reg) ir.Reg {
		gx := bu.Bin(ir.CmpGE, ir.F32, ax, zf)
		gy := bu.Bin(ir.CmpGE, ir.F32, ay, zf)
		le := bu.Bin(ir.CmpLE, ir.F32, bu.Bin(ir.FAdd, ir.F32, ax, ay), one)
		return bu.Bin(ir.And, ir.I32, bu.Bin(ir.And, ir.I32, gx, gy), le)
	}
	// orient(a,b,c) = (b−a)×(c−a).
	orient := func(ax, ay, bx, by, cx, cy ir.Reg) ir.Reg {
		return bu.Bin(ir.FSub, ir.F32,
			bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FSub, ir.F32, bx, ax), bu.Bin(ir.FSub, ir.F32, cy, ay)),
			bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FSub, ir.F32, by, ay), bu.Bin(ir.FSub, ir.F32, cx, ax)))
	}
	segTest := func(cx, cy, dx, dy ir.Reg) ir.Reg {
		o1 := orient(px, py, qx, qy, cx, cy)
		o2 := orient(px, py, qx, qy, dx, dy)
		o3 := orient(cx, cy, dx, dy, px, py)
		o4 := orient(cx, cy, dx, dy, qx, qy)
		s1 := bu.Bin(ir.CmpLE, ir.F32, bu.Bin(ir.FMul, ir.F32, o1, o2), zf)
		s2 := bu.Bin(ir.CmpLE, ir.F32, bu.Bin(ir.FMul, ir.F32, o3, o4), zf)
		return bu.Bin(ir.And, ir.I32, s1, s2)
	}
	hit := bu.Bin(ir.Or, ir.I32, inside(px, py), inside(qx, qy))
	hit = bu.Bin(ir.Or, ir.I32, hit, segTest(zf, zf, one, zf))
	hit = bu.Bin(ir.Or, ir.I32, hit, segTest(one, zf, zf, one))
	hit = bu.Bin(ir.Or, ir.I32, hit, segTest(zf, one, zf, zf))
	bu.Ret(hit)

	bu.SetBlock(missB)
	miss := bu.ConstI32(0)
	bu.Ret(miss)

	// Driver: main(src, dst, n).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	z := mbu.ConstI32(0)
	l := BeginLoop(mbu, f, z, f.Params[2])
	src := ElemAddr(mbu, f.Params[0], l.I, 36)
	args := make([]ir.Reg, 9)
	for j := 0; j < 9; j++ {
		args[j] = mbu.Load(ir.F32, src, int64(j*4))
	}
	r := mbu.Call("tritri", 1, args...)
	dst := ElemAddr(mbu, f.Params[1], l.I, 4)
	mbu.Store(ir.I32, dst, 0, r[0])
	l.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
