package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// Inversek2j computes the joint angles of a two-joint robotic arm from
// end-effector targets (AxBench).  The memoized kernel takes the (x, y)
// target — 8 bytes — and returns the packed (θ1, θ2) pair.  Targets come
// from quantized sensor readings with measurement jitter; truncating 8
// LSBs (Table 2) merges jittered repeats of the same pose.
func Inversek2j() *Workload {
	return &Workload{
		Name:        "inversek2j",
		Domain:      "Robotics",
		Description: "Calculates the angles of a two-joint arm",
		InputBytes:  "8",
		TruncBits:   []uint8{8},
		Build:       buildInversek2j,
		PaperScale:  310,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{8}, trunc)
			return []compiler.Region{{
				Func:        "ik",
				LUT:         0,
				InputParams: []int{0, 1},
				ParamTrunc:  []uint8{tb[0], tb[0]},
			}}
		},
		Setup:    setupInversek2j,
		MemBytes: func(scale int) int { return 1<<16 + ikCount(scale)*16 },
	}
}

func ikCount(scale int) int { return 4000 * scale }

const ikL1, ikL2 = float32(0.5), float32(0.5)

// ikGold mirrors the IR kernel in float32.
func ikGold(x, y float32) (t1, t2 float32) {
	r2 := x*x + y*y
	cosT2 := (r2 - ikL1*ikL1 - ikL2*ikL2) / (2 * ikL1 * ikL2)
	if cosT2 > 1 {
		cosT2 = 1
	}
	if cosT2 < -1 {
		cosT2 = -1
	}
	t2 = acosf(cosT2)
	t1 = atan2f(y, x) - atan2f(ikL2*sinf(t2), ikL1+ikL2*cosf(t2))
	return
}

func setupInversek2j(img *cpu.Memory, scale int) *Instance {
	rng := rand.New(rand.NewSource(11))
	n := ikCount(scale)
	// Pose pool: angle pairs on a 1/128 grid (quantized trajectory
	// waypoints); each sample adds sensor jitter far below the 8-bit
	// truncation granularity.
	type pose struct{ x, y float32 }
	pool := make([]pose, 512)
	for i := range pool {
		t1 := float32(rng.Intn(128)) * (1.5707964 / 128)
		t2 := float32(rng.Intn(128)) * (3.1415927 / 128)
		x := ikL1*cosf(t1) + ikL2*cosf(t1+t2)
		y := ikL1*sinf(t1) + ikL2*sinf(t1+t2)
		pool[i] = pose{x, y}
	}
	src := img.Alloc(n * 8)
	dst := img.Alloc(n * 8)
	golden := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		p := pool[rng.Intn(len(pool))]
		x := p.x + float32(rng.NormFloat64())*1e-6
		y := p.y + float32(rng.NormFloat64())*1e-6
		img.SetF32(src+uint64(i*8), x)
		img.SetF32(src+uint64(i*8)+4, y)
		t1, t2 := ikGold(x, y)
		golden[2*i] = float64(t1)
		golden[2*i+1] = float64(t2)
	}
	return &Instance{
		Args:   []uint64{src, dst, uint64(uint32(n))},
		N:      n,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, 2*n)
			for i := 0; i < n; i++ {
				out[2*i] = float64(img.F32(dst + uint64(i*8)))
				out[2*i+1] = float64(img.F32(dst + uint64(i*8) + 4))
			}
			return out
		},
	}
}

func buildInversek2j() *ir.Program {
	p := ir.NewProgram("main")
	libm.BuildInto(p)

	// Kernel: ik(x, y) -> (θ1, θ2).
	k := p.NewFunc("ik", []ir.Type{ir.F32, ir.F32}, []ir.Type{ir.F32, ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	x, y := k.Params[0], k.Params[1]
	r2 := bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FMul, ir.F32, x, x), bu.Bin(ir.FMul, ir.F32, y, y))
	l1sq := bu.ConstF32(ikL1 * ikL1)
	l2sq := bu.ConstF32(ikL2 * ikL2)
	den := bu.ConstF32(2 * ikL1 * ikL2)
	cosT2 := bu.Bin(ir.FDiv, ir.F32,
		bu.Bin(ir.FSub, ir.F32, bu.Bin(ir.FSub, ir.F32, r2, l1sq), l2sq), den)
	one := bu.ConstF32(1)
	negOne := bu.ConstF32(-1)
	cosT2 = bu.Bin(ir.FMin, ir.F32, cosT2, one)
	cosT2 = bu.Bin(ir.FMax, ir.F32, cosT2, negOne)
	t2 := bu.Call(libm.FnAcos, 1, cosT2)[0]
	l2c := bu.ConstF32(ikL2)
	l1c := bu.ConstF32(ikL1)
	sy := bu.Bin(ir.FMul, ir.F32, l2c, bu.Call(libm.FnSin, 1, t2)[0])
	sx := bu.Bin(ir.FAdd, ir.F32, l1c, bu.Bin(ir.FMul, ir.F32, l2c, bu.Call(libm.FnCos, 1, t2)[0]))
	t1 := bu.Bin(ir.FSub, ir.F32,
		bu.Call(libm.FnAtan2, 1, y, x)[0],
		bu.Call(libm.FnAtan2, 1, sy, sx)[0])
	bu.Ret(t1, t2)

	// Driver: main(src, dst, n).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	zero := mbu.ConstI32(0)
	l := BeginLoop(mbu, f, zero, f.Params[2])
	src := ElemAddr(mbu, f.Params[0], l.I, 8)
	xv := mbu.Load(ir.F32, src, 0)
	yv := mbu.Load(ir.F32, src, 4)
	r := mbu.Call("ik", 2, xv, yv)
	dst := ElemAddr(mbu, f.Params[1], l.I, 8)
	mbu.Store(ir.F32, dst, 0, r[0])
	mbu.Store(ir.F32, dst, 4, r[1])
	l.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
