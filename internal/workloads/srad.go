package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// SRAD performs speckle-reducing anisotropic diffusion on a medical image
// (Rodinia).  The memoized kernel computes the diffusion coefficient from
// six inputs — 24 bytes, Table 2: the center intensity, the four
// directional derivatives, and the iteration's speckle statistic q0².
// Table 2's aggressive 18-bit truncation merges the smooth coefficient
// field onto a coarse grid.
func SRAD() *Workload {
	return &Workload{
		Name:        "srad",
		Domain:      "Medical Imaging",
		Description: "Image denoising by anisotropic diffusion",
		InputBytes:  "24",
		TruncBits:   []uint8{18},
		ImageOutput: true,
		Build:       buildSRAD,
		PaperScale:  99,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{18}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "srad_coeff",
				LUT:         0,
				InputParams: []int{0, 1, 2, 3, 4, 5},
				ParamTrunc:  []uint8{t, t, t, t, t, t},
			}}
		},
		Setup:    setupSRAD,
		MemBytes: func(scale int) int { w, h := sradDims(scale); return 1<<16 + w*h*32 },
	}
}

func sradDims(scale int) (int, int) {
	side := 48
	for side*side < 48*48*scale {
		side *= 2
	}
	return side, side
}

const (
	sradIters  = 2
	sradLambda = float32(0.5)
)

// sradCoeffGold mirrors the IR kernel: the diffusion coefficient of one
// pixel from the raw neighbor intensities and the global q0².  The kernel
// takes raw intensities (not pre-computed derivatives) so that truncation
// operates on the ~100-magnitude pixel values, where its relative grid
// can actually fold speckle away.
func sradCoeffGold(center, n, s, wv, e, q0sqr float32) float32 {
	dN := n - center
	dS := s - center
	dW := wv - center
	dE := e - center
	return sradCoeffDerivGold(center, dN, dS, dW, dE, q0sqr)
}

// sradCoeffDerivGold is the derivative-domain core shared with the
// divergence pass.
func sradCoeffDerivGold(center, dN, dS, dW, dE, q0sqr float32) float32 {
	g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (center * center)
	l := (dN + dS + dW + dE) / center
	num := 0.5*g2 - 0.0625*(l*l)
	den := 1 + 0.25*l
	qsqr := num / (den * den)
	den2 := (qsqr - q0sqr) / (q0sqr * (1 + q0sqr))
	c := 1 / (1 + den2)
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// sradGold runs the full float32 pipeline (interior cells; borders
// pinned).
func sradGold(img0 []float32, w, h int) []float64 {
	img := append([]float32{}, img0...)
	cArr := make([]float32, w*h)
	dNArr := make([]float32, w*h)
	dSArr := make([]float32, w*h)
	dWArr := make([]float32, w*h)
	dEArr := make([]float32, w*h)
	for it := 0; it < sradIters; it++ {
		// Speckle statistic over the interior.
		var sum, sum2 float32
		var cnt float32
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				v := img[y*w+x]
				sum = sum + v
				sum2 = sum2 + v*v
				cnt = cnt + 1
			}
		}
		mean := sum / cnt
		variance := sum2/cnt - mean*mean
		q0 := variance / (mean * mean)
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				i := y*w + x
				c := img[i]
				dN := img[i-w] - c
				dS := img[i+w] - c
				dW := img[i-1] - c
				dE := img[i+1] - c
				dNArr[i], dSArr[i], dWArr[i], dEArr[i] = dN, dS, dW, dE
				cArr[i] = sradCoeffGold(c, img[i-w], img[i+w], img[i-1], img[i+1], q0)
			}
		}
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				i := y*w + x
				// Divergence with the south/east neighbors' coefficients.
				d := cArr[i+w]*dSArr[i] + cArr[i]*dNArr[i] + cArr[i+1]*dEArr[i] + cArr[i]*dWArr[i]
				img[i] = img[i] + 0.25*sradLambda*d
			}
		}
	}
	out := make([]float64, w*h)
	for i, v := range img {
		out[i] = float64(v)
	}
	return out
}

func setupSRAD(img *cpu.Memory, scale int) *Instance {
	w, h := sradDims(scale)
	n := w * h
	pix := SyntheticImage(w, h, 123)
	// Ultrasound images carry speckle — sub-level multiplicative noise
	// that SRAD exists to remove.  Table 2's aggressive 18-bit
	// truncation folds speckle-sized differences together (Fig. 11).
	rng := rand.New(rand.NewSource(124))
	for i := range pix {
		pix[i] = pix[i] + 1 + float32(rng.Float64()*0.7) // strictly positive
	}
	iBase := img.Alloc(n * 4)
	for i, v := range pix {
		img.SetF32(iBase+uint64(i*4), v)
	}
	cBase := img.Alloc(n * 4)
	dBase := img.Alloc(n * 16) // dN, dS, dW, dE interleaved
	golden := sradGold(pix, w, h)
	return &Instance{
		Args:   []uint64{iBase, cBase, dBase, uint64(uint32(w)), uint64(uint32(h))},
		N:      (w - 2) * (h - 2) * sradIters,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(img.F32(iBase + uint64(i*4)))
			}
			return out
		},
	}
}

func buildSRAD() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel: srad_coeff(center, north, south, west, east, q0sqr) -> c.
	// Raw intensities in, derivatives computed inside (see golden).
	k := p.NewFunc("srad_coeff",
		[]ir.Type{ir.F32, ir.F32, ir.F32, ir.F32, ir.F32, ir.F32}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	c, nI, sI, wI, eI, q0 := k.Params[0], k.Params[1], k.Params[2], k.Params[3], k.Params[4], k.Params[5]
	dN := bu.Bin(ir.FSub, ir.F32, nI, c)
	dS := bu.Bin(ir.FSub, ir.F32, sI, c)
	dW := bu.Bin(ir.FSub, ir.F32, wI, c)
	dE := bu.Bin(ir.FSub, ir.F32, eI, c)
	sq := func(r ir.Reg) ir.Reg { return bu.Bin(ir.FMul, ir.F32, r, r) }
	g2 := bu.Bin(ir.FDiv, ir.F32,
		bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, sq(dN), sq(dS)), sq(dW)), sq(dE)),
		sq(c))
	l := bu.Bin(ir.FDiv, ir.F32,
		bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, dN, dS), dW), dE), c)
	half := bu.ConstF32(0.5)
	sixteenth := bu.ConstF32(0.0625)
	one := bu.ConstF32(1)
	quarter := bu.ConstF32(0.25)
	num := bu.Bin(ir.FSub, ir.F32,
		bu.Bin(ir.FMul, ir.F32, half, g2),
		bu.Bin(ir.FMul, ir.F32, sixteenth, sq(l)))
	den := bu.Bin(ir.FAdd, ir.F32, one, bu.Bin(ir.FMul, ir.F32, quarter, l))
	qsqr := bu.Bin(ir.FDiv, ir.F32, num, sq(den))
	den2 := bu.Bin(ir.FDiv, ir.F32,
		bu.Bin(ir.FSub, ir.F32, qsqr, q0),
		bu.Bin(ir.FMul, ir.F32, q0, bu.Bin(ir.FAdd, ir.F32, one, q0)))
	coeff := bu.Bin(ir.FDiv, ir.F32, one, bu.Bin(ir.FAdd, ir.F32, one, den2))
	zero := bu.ConstF32(0)
	coeff = bu.Bin(ir.FMax, ir.F32, coeff, zero)
	coeff = bu.Bin(ir.FMin, ir.F32, coeff, one)
	bu.Ret(coeff)

	// Driver: main(img, cArr, dArr, w, h).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I64, ir.I32, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	iB, cB, dB, wP, hP := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
	oneI := mbu.ConstI32(1)
	four := mbu.ConstI64(4)
	hEnd := mbu.Bin(ir.Sub, ir.I32, hP, oneI)
	wEnd := mbu.Bin(ir.Sub, ir.I32, wP, oneI)
	wOff := mbu.Bin(ir.Mul, ir.I64, mbu.Cvt(ir.I32, ir.I64, wP), four)
	zf := mbu.ConstF32(0)
	oneF := mbu.ConstF32(1)
	qlam := mbu.ConstF32(0.25 * sradLambda)

	il := LoopN(mbu, f, sradIters)
	{
		// Pass 0: speckle statistic q0² over the interior.
		sum := mbu.Mov(ir.F32, zf)
		sum2 := mbu.Mov(ir.F32, zf)
		cnt := mbu.Mov(ir.F32, zf)
		y0 := BeginLoop(mbu, f, oneI, hEnd)
		{
			x0 := BeginLoop(mbu, f, oneI, wEnd)
			{
				idx := mbu.Bin(ir.Add, ir.I32, mbu.Bin(ir.Mul, ir.I32, y0.I, wP), x0.I)
				v := mbu.Load(ir.F32, ElemAddr(mbu, iB, idx, 4), 0)
				mbu.MovTo(ir.F32, sum, mbu.Bin(ir.FAdd, ir.F32, sum, v))
				mbu.MovTo(ir.F32, sum2, mbu.Bin(ir.FAdd, ir.F32, sum2, mbu.Bin(ir.FMul, ir.F32, v, v)))
				mbu.MovTo(ir.F32, cnt, mbu.Bin(ir.FAdd, ir.F32, cnt, oneF))
			}
			x0.End(mbu)
		}
		y0.End(mbu)
		mean := mbu.Bin(ir.FDiv, ir.F32, sum, cnt)
		variance := mbu.Bin(ir.FSub, ir.F32, mbu.Bin(ir.FDiv, ir.F32, sum2, cnt),
			mbu.Bin(ir.FMul, ir.F32, mean, mean))
		q0 := mbu.Bin(ir.FDiv, ir.F32, variance, mbu.Bin(ir.FMul, ir.F32, mean, mean))

		// Pass 1: derivatives and diffusion coefficients.
		y1 := BeginLoop(mbu, f, oneI, hEnd)
		{
			x1 := BeginLoop(mbu, f, oneI, wEnd)
			{
				idx := mbu.Bin(ir.Add, ir.I32, mbu.Bin(ir.Mul, ir.I32, y1.I, wP), x1.I)
				ia := ElemAddr(mbu, iB, idx, 4)
				cv := mbu.Load(ir.F32, ia, 0)
				nv := mbu.Load(ir.F32, mbu.Bin(ir.Sub, ir.I64, ia, wOff), 0)
				sv := mbu.Load(ir.F32, mbu.Bin(ir.Add, ir.I64, ia, wOff), 0)
				wv := mbu.Load(ir.F32, ia, -4)
				ev := mbu.Load(ir.F32, ia, 4)
				dN := mbu.Bin(ir.FSub, ir.F32, nv, cv)
				dS := mbu.Bin(ir.FSub, ir.F32, sv, cv)
				dW := mbu.Bin(ir.FSub, ir.F32, wv, cv)
				dE := mbu.Bin(ir.FSub, ir.F32, ev, cv)
				coeff := mbu.Call("srad_coeff", 1, cv, nv, sv, wv, ev, q0)[0]
				mbu.Store(ir.F32, ElemAddr(mbu, cB, idx, 4), 0, coeff)
				da := ElemAddr(mbu, dB, idx, 16)
				mbu.Store(ir.F32, da, 0, dN)
				mbu.Store(ir.F32, da, 4, dS)
				mbu.Store(ir.F32, da, 8, dW)
				mbu.Store(ir.F32, da, 12, dE)
			}
			x1.End(mbu)
		}
		y1.End(mbu)

		// Pass 2: divergence and image update.
		y2 := BeginLoop(mbu, f, oneI, hEnd)
		{
			x2 := BeginLoop(mbu, f, oneI, wEnd)
			{
				idx := mbu.Bin(ir.Add, ir.I32, mbu.Bin(ir.Mul, ir.I32, y2.I, wP), x2.I)
				ca := ElemAddr(mbu, cB, idx, 4)
				cC := mbu.Load(ir.F32, ca, 0)
				cS := mbu.Load(ir.F32, mbu.Bin(ir.Add, ir.I64, ca, wOff), 0)
				cE := mbu.Load(ir.F32, ca, 4)
				da := ElemAddr(mbu, dB, idx, 16)
				dN := mbu.Load(ir.F32, da, 0)
				dS := mbu.Load(ir.F32, da, 4)
				dW := mbu.Load(ir.F32, da, 8)
				dE := mbu.Load(ir.F32, da, 12)
				div := bu2Sum(mbu, cS, dS, cC, dN, cE, dE, cC, dW)
				ia := ElemAddr(mbu, iB, idx, 4)
				old := mbu.Load(ir.F32, ia, 0)
				mbu.Store(ir.F32, ia, 0,
					mbu.Bin(ir.FAdd, ir.F32, old, mbu.Bin(ir.FMul, ir.F32, qlam, div)))
			}
			x2.End(mbu)
		}
		y2.End(mbu)
	}
	il.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// bu2Sum emits a*b + c*d + e*f + g*h with left-associated additions,
// matching the golden's evaluation order.
func bu2Sum(bu *ir.Builder, a, b, c, d, e, f, g, h ir.Reg) ir.Reg {
	t1 := bu.Bin(ir.FMul, ir.F32, a, b)
	t2 := bu.Bin(ir.FMul, ir.F32, c, d)
	t3 := bu.Bin(ir.FMul, ir.F32, e, f)
	t4 := bu.Bin(ir.FMul, ir.F32, g, h)
	return bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, t1, t2), t3), t4)
}
