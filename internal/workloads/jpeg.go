package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/memo"
)

// JPEG compresses and reconstructs a grayscale image (AxBench).  Two code
// regions are memoized, matching Table 2's (16, 16)-byte inputs and
// (2, 7)-bit truncations:
//
//   - wht4 (LUT 0): the 4-pixel butterfly of the block transform —
//     (a,b,c,d) → (sum, alternating difference), the Walsh–Hadamard-style
//     stage standing in for the DCT butterflies (see DESIGN.md);
//   - quant4 (LUT 1): uniform quantization of four transform
//     coefficients into four int16 levels packed into one 8-byte value.
//
// The driver dequantizes and inverts the transform, so the program's
// output is the reconstructed image and quality is measured against the
// exact (unmemoized) codec.
func JPEG() *Workload {
	packed := memo.OutPacked
	return &Workload{
		Name:        "jpeg",
		Domain:      "Compression",
		Description: "Compresses an image using a block transform codec",
		InputBytes:  "(16, 16)",
		TruncBits:   []uint8{2, 7},
		ImageOutput: true,
		Build:       buildJPEG,
		PaperScale:  64,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{2, 7}, trunc)
			return []compiler.Region{
				{
					Func:        "wht4",
					LUT:         0,
					InputParams: []int{0, 1, 2, 3},
					ParamTrunc:  []uint8{tb[0], tb[0], tb[0], tb[0]},
				},
				{
					Func:         "quant4",
					LUT:          1,
					InputParams:  []int{0, 1, 2, 3},
					ParamTrunc:   []uint8{tb[1], tb[1], tb[1], tb[1]},
					KindOverride: &packed,
				},
			}
		},
		Setup:    setupJPEG,
		MemBytes: func(scale int) int { w, h := jpegDims(scale); return 1<<16 + w*h*8 },
	}
}

func jpegDims(scale int) (int, int) {
	side := 64
	for side*side < 64*64*scale {
		side *= 2
	}
	return side, side
}

const jpegQ = float32(8)

// wht4Gold mirrors the IR wht4 kernel: JPEG level shift followed by the
// DC and first-AC butterflies of the 4-point DCT-II.
func wht4Gold(a, b, c, d float32) (s, t float32) {
	a = a - 128
	b = b - 128
	c = c - 128
	d = d - 128
	s = (a+d+(b+c))*0.5 + 128
	t = 0.65328148*(a-d) + 0.27059805*(b-c)
	return
}

// quant4Gold mirrors the IR quant4 kernel: floor(v/Q + 0.5) per lane.
func quant4Gold(v0, v1, v2, v3 float32) [4]int16 {
	q := func(v float32) int16 {
		return int16(int32(floorf(v/jpegQ + 0.5)))
	}
	return [4]int16{q(v0), q(v1), q(v2), q(v3)}
}

// jpegGoldRow runs the exact codec over one 8-pixel group and writes the
// reconstruction.
func jpegGoldRow(px []float32, out []float32) {
	s0, t0 := wht4Gold(px[0], px[1], px[2], px[3])
	s1, t1 := wht4Gold(px[4], px[5], px[6], px[7])
	qv := quant4Gold(s0, t0, s1, t1)
	ds0 := float32(qv[0]) * jpegQ
	dt0 := float32(qv[1]) * jpegQ
	ds1 := float32(qv[2]) * jpegQ
	dt1 := float32(qv[3]) * jpegQ
	recon := func(s, t float32, dst []float32) {
		m := (s - 128) * 0.5
		dst[0] = m + t*0.65328148 + 128
		dst[1] = m + t*0.27059805 + 128
		dst[2] = m - t*0.27059805 + 128
		dst[3] = m - t*0.65328148 + 128
	}
	recon(ds0, dt0, out[0:4])
	recon(ds1, dt1, out[4:8])
}

func setupJPEG(img *cpu.Memory, scale int) *Instance {
	w, h := jpegDims(scale)
	pix := SyntheticImage(w, h, 31)
	// Color-space conversion upstream of the codec leaves a tiny
	// relative fuzz on each sample; Table 2's 2-bit truncation is just
	// enough to fold it away (Fig. 11).
	rng := rand.New(rand.NewSource(32))
	for i := range pix {
		if pix[i] > 0 {
			pix[i] = pix[i] * (1 + float32(0.1+0.8*rng.Float64())*(1.0/(1<<21)))
		}
	}
	src := img.Alloc(w * h * 4)
	dst := img.Alloc(w * h * 4)
	for i, v := range pix {
		img.SetF32(src+uint64(i*4), v)
	}
	golden := make([]float64, w*h)
	row := make([]float32, 8)
	out := make([]float32, 8)
	for base := 0; base < w*h; base += 8 {
		copy(row, pix[base:base+8])
		jpegGoldRow(row, out)
		for j, v := range out {
			golden[base+j] = float64(v)
		}
	}
	groups := w * h / 8
	return &Instance{
		Args:   []uint64{src, dst, uint64(uint32(groups))},
		N:      groups * 3, // 2×wht4 + 1×quant4 per group
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			outv := make([]float64, w*h)
			for i := range outv {
				outv[i] = float64(img.F32(dst + uint64(i*4)))
			}
			return outv
		},
	}
}

func buildJPEG() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel A: wht4(a,b,c,d) -> (sum/2, altdiff/2).
	ka := p.NewFunc("wht4", []ir.Type{ir.F32, ir.F32, ir.F32, ir.F32}, []ir.Type{ir.F32, ir.F32})
	kab := ka.NewBlock("entry")
	bu := ir.At(ka, kab)
	a0, b0, c0, d0 := ka.Params[0], ka.Params[1], ka.Params[2], ka.Params[3]
	half := bu.ConstF32(0.5)
	shift := bu.ConstF32(128)
	a := bu.Bin(ir.FSub, ir.F32, a0, shift)
	b := bu.Bin(ir.FSub, ir.F32, b0, shift)
	c := bu.Bin(ir.FSub, ir.F32, c0, shift)
	d := bu.Bin(ir.FSub, ir.F32, d0, shift)
	ad := bu.Bin(ir.FAdd, ir.F32, a, d)
	bc := bu.Bin(ir.FAdd, ir.F32, b, c)
	s := bu.Bin(ir.FAdd, ir.F32,
		bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FAdd, ir.F32, ad, bc), half), shift)
	c1 := bu.ConstF32(0.65328148)
	c3 := bu.ConstF32(0.27059805)
	t := bu.Bin(ir.FAdd, ir.F32,
		bu.Bin(ir.FMul, ir.F32, c1, bu.Bin(ir.FSub, ir.F32, a, d)),
		bu.Bin(ir.FMul, ir.F32, c3, bu.Bin(ir.FSub, ir.F32, b, c)))
	bu.Ret(s, t)

	// Kernel B: quant4(v0..v3) -> i64 packing four int16 levels.
	kb := p.NewFunc("quant4", []ir.Type{ir.F32, ir.F32, ir.F32, ir.F32}, []ir.Type{ir.I64})
	kbb := kb.NewBlock("entry")
	bu = ir.At(kb, kbb)
	q := bu.ConstF32(jpegQ)
	halfQ := bu.ConstF32(0.5)
	mask16 := bu.ConstI64(0xFFFF)
	var packed ir.Reg
	for i := 0; i < 4; i++ {
		lvlF := bu.Un(ir.Floor, ir.F32, bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FDiv, ir.F32, kb.Params[i], q), halfQ))
		lvl := bu.Cvt(ir.F32, ir.I64, lvlF)
		lane := bu.Bin(ir.And, ir.I64, lvl, mask16)
		if i == 0 {
			packed = lane
		} else {
			sh := bu.ConstI64(int64(16 * i))
			packed = bu.Bin(ir.Or, ir.I64, packed, bu.Bin(ir.Shl, ir.I64, lane, sh))
		}
	}
	bu.Ret(packed)

	// Driver: main(src, dst, groups) — one group is 8 pixels.
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	zero := mbu.ConstI32(0)
	l := BeginLoop(mbu, f, zero, f.Params[2])
	src := ElemAddr(mbu, f.Params[0], l.I, 32)
	dst := ElemAddr(mbu, f.Params[1], l.I, 32)
	px := make([]ir.Reg, 8)
	for j := 0; j < 8; j++ {
		px[j] = mbu.Load(ir.F32, src, int64(j*4))
	}
	g0 := mbu.Call("wht4", 2, px[0], px[1], px[2], px[3])
	g1 := mbu.Call("wht4", 2, px[4], px[5], px[6], px[7])
	qp := mbu.Call("quant4", 1, g0[0], g0[1], g1[0], g1[1])[0]
	// Dequantize: sign-extend each 16-bit lane and scale by Q.
	qC := mbu.ConstF32(jpegQ)
	c48 := mbu.ConstI64(48)
	deq := make([]ir.Reg, 4)
	for i := 0; i < 4; i++ {
		shl := mbu.ConstI64(int64(48 - 16*i))
		up := mbu.Bin(ir.Shl, ir.I64, qp, shl)
		lane := mbu.Bin(ir.Shr, ir.I64, up, c48) // arithmetic shift sign-extends
		lf := mbu.Cvt(ir.I64, ir.F32, lane)
		deq[i] = mbu.Bin(ir.FMul, ir.F32, lf, qC)
	}
	// Reconstruct with the transposed basis (see jpegGoldRow).
	halfC := mbu.ConstF32(0.5)
	shiftC := mbu.ConstF32(128)
	k1 := mbu.ConstF32(0.65328148)
	k3 := mbu.ConstF32(0.27059805)
	recon := func(s, t ir.Reg, off int64) {
		m := mbu.Bin(ir.FMul, ir.F32, mbu.Bin(ir.FSub, ir.F32, s, shiftC), halfC)
		t1 := mbu.Bin(ir.FMul, ir.F32, t, k1)
		t3 := mbu.Bin(ir.FMul, ir.F32, t, k3)
		mbu.Store(ir.F32, dst, off+0, mbu.Bin(ir.FAdd, ir.F32, mbu.Bin(ir.FAdd, ir.F32, m, t1), shiftC))
		mbu.Store(ir.F32, dst, off+4, mbu.Bin(ir.FAdd, ir.F32, mbu.Bin(ir.FAdd, ir.F32, m, t3), shiftC))
		mbu.Store(ir.F32, dst, off+8, mbu.Bin(ir.FAdd, ir.F32, mbu.Bin(ir.FSub, ir.F32, m, t3), shiftC))
		mbu.Store(ir.F32, dst, off+12, mbu.Bin(ir.FAdd, ir.F32, mbu.Bin(ir.FSub, ir.F32, m, t1), shiftC))
	}
	recon(deq[0], deq[1], 0)
	recon(deq[2], deq[3], 16)
	l.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
