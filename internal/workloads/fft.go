package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// FFT is a radix-2 Cooley-Tukey FFT (AxBench).  The memoized kernel is
// the twiddle-factor computation: a single 4-byte angle input (Table 2)
// producing (cos, sin) packed into an 8-byte LUT entry.  The same angles
// recur across butterfly groups and stages, so the hit rate is high with
// zero truncation.  This is the paper's example of a kernel whose inputs
// are not loads, exercising reg_crc.
//
// Substitution note: the driver receives the input pre-permuted in
// bit-reversed order (the permutation is staged by the host, as the
// in-simulator index-reversal loop adds nothing to the memoization
// study); the butterfly stages run fully in the simulator.
func FFT() *Workload {
	return &Workload{
		Name:        "fft",
		Domain:      "Signal Processing",
		Description: "Radix-2 Cooley-Tukey FFT",
		InputBytes:  "4",
		TruncBits:   []uint8{0},
		Build:       buildFFT,
		PaperScale:  16,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{0}, trunc)
			return []compiler.Region{{
				Func:        "twiddle",
				LUT:         0,
				InputParams: []int{0},
				ParamTrunc:  []uint8{tb[0]},
			}}
		},
		Setup:    setupFFT,
		MemBytes: func(scale int) int { return 1<<16 + fftSize(scale)*8 },
	}
}

func fftSize(scale int) int {
	n := 256
	for n < 256*scale {
		n <<= 1
	}
	return n
}

// bitReverse returns the bit-reversed permutation index.
func bitReverse(i, logn int) int {
	r := 0
	for b := 0; b < logn; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

// fftGold runs the same staged FFT in float32.
func fftGold(re, im []float32) {
	n := len(re)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		theta := float32(-6.2831853071795864769) / float32(size)
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				angle := theta * float32(j)
				wre := cosf(angle)
				wim := sinf(angle)
				k1 := start + j
				k2 := k1 + half
				tre := wre*re[k2] - wim*im[k2]
				tim := wre*im[k2] + wim*re[k2]
				re[k2] = re[k1] - tre
				im[k2] = im[k1] - tim
				re[k1] = re[k1] + tre
				im[k1] = im[k1] + tim
			}
		}
	}
}

func setupFFT(img *cpu.Memory, scale int) *Instance {
	rng := rand.New(rand.NewSource(7))
	n := fftSize(scale)
	logn := 0
	for 1<<logn < n {
		logn++
	}
	signal := make([]float32, n)
	for i := range signal {
		v := sinf(float32(i)*0.1) + 0.5*sinf(float32(i)*0.37+1.0) + float32(rng.NormFloat64())*0.05
		signal[i] = v
	}
	// Pre-permute into bit-reversed order.
	re := make([]float32, n)
	im := make([]float32, n)
	for i := range signal {
		re[bitReverse(i, logn)] = signal[i]
	}
	reBase := img.Alloc(n * 4)
	imBase := img.Alloc(n * 4)
	for i := 0; i < n; i++ {
		img.SetF32(reBase+uint64(i*4), re[i])
		img.SetF32(imBase+uint64(i*4), im[i])
	}
	gre := append([]float32{}, re...)
	gim := append([]float32{}, im...)
	fftGold(gre, gim)
	golden := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		golden[2*i] = float64(gre[i])
		golden[2*i+1] = float64(gim[i])
	}
	// Kernel invocations: (n/2)·log2(n).
	return &Instance{
		Args:   []uint64{reBase, imBase, uint64(uint32(n))},
		N:      n / 2 * logn,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, 2*n)
			for i := 0; i < n; i++ {
				out[2*i] = float64(img.F32(reBase + uint64(i*4)))
				out[2*i+1] = float64(img.F32(imBase + uint64(i*4)))
			}
			return out
		},
	}
}

func buildFFT() *ir.Program {
	p := ir.NewProgram("main")
	libm.BuildInto(p)

	// Kernel: twiddle(angle) -> (cos, sin).
	k := p.NewFunc("twiddle", []ir.Type{ir.F32}, []ir.Type{ir.F32, ir.F32})
	kb := k.NewBlock("entry")
	kbu := ir.At(k, kb)
	c := kbu.Call(libm.FnCos, 1, k.Params[0])[0]
	s := kbu.Call(libm.FnSin, 1, k.Params[0])[0]
	kbu.Ret(c, s)

	// Driver: main(reBase, imBase, n).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	entry := f.NewBlock("entry")
	sizeCond := f.NewBlock("size.cond")
	sizeBody := f.NewBlock("size.body")
	done := f.NewBlock("done")

	bu := ir.At(f, entry)
	reB, imB, n := f.Params[0], f.Params[1], f.Params[2]
	two := bu.ConstI32(2)
	size := bu.Mov(ir.I32, two)
	minusTwoPi := bu.ConstF32(-6.2831855)
	bu.Jmp(sizeCond)

	bu.SetBlock(sizeCond)
	cnd := bu.Bin(ir.CmpLE, ir.I32, size, n)
	bu.Br(cnd, sizeBody, done)

	bu.SetBlock(sizeBody)
	one := bu.ConstI32(1)
	half := bu.Bin(ir.Shr, ir.I32, size, one)
	sizeF := bu.Cvt(ir.I32, ir.F32, size)
	theta := bu.Bin(ir.FDiv, ir.F32, minusTwoPi, sizeF)

	// for start := 0; start < n; start += size — manual loop since the
	// stride is a register.
	startCond := f.NewBlock("start.cond")
	startBody := f.NewBlock("start.body")
	startDone := f.NewBlock("start.done")
	zero := bu.ConstI32(0)
	start := bu.Mov(ir.I32, zero)
	bu.Jmp(startCond)
	bu.SetBlock(startCond)
	sc := bu.Bin(ir.CmpLT, ir.I32, start, n)
	bu.Br(sc, startBody, startDone)

	bu.SetBlock(startBody)
	jl := BeginLoop(bu, f, zero, half)
	{
		jF := bu.Cvt(ir.I32, ir.F32, jl.I)
		angle := bu.Bin(ir.FMul, ir.F32, theta, jF)
		w := bu.Call("twiddle", 2, angle)
		wre, wim := w[0], w[1]
		k1 := bu.Bin(ir.Add, ir.I32, start, jl.I)
		k2 := bu.Bin(ir.Add, ir.I32, k1, half)
		reA1 := ElemAddr(bu, reB, k1, 4)
		imA1 := ElemAddr(bu, imB, k1, 4)
		reA2 := ElemAddr(bu, reB, k2, 4)
		imA2 := ElemAddr(bu, imB, k2, 4)
		re2 := bu.Load(ir.F32, reA2, 0)
		im2 := bu.Load(ir.F32, imA2, 0)
		re1 := bu.Load(ir.F32, reA1, 0)
		im1 := bu.Load(ir.F32, imA1, 0)
		tre := bu.Bin(ir.FSub, ir.F32,
			bu.Bin(ir.FMul, ir.F32, wre, re2),
			bu.Bin(ir.FMul, ir.F32, wim, im2))
		tim := bu.Bin(ir.FAdd, ir.F32,
			bu.Bin(ir.FMul, ir.F32, wre, im2),
			bu.Bin(ir.FMul, ir.F32, wim, re2))
		bu.Store(ir.F32, reA2, 0, bu.Bin(ir.FSub, ir.F32, re1, tre))
		bu.Store(ir.F32, imA2, 0, bu.Bin(ir.FSub, ir.F32, im1, tim))
		bu.Store(ir.F32, reA1, 0, bu.Bin(ir.FAdd, ir.F32, re1, tre))
		bu.Store(ir.F32, imA1, 0, bu.Bin(ir.FAdd, ir.F32, im1, tim))
	}
	jl.End(bu)
	bu.MovTo(ir.I32, start, bu.Bin(ir.Add, ir.I32, start, size))
	bu.Jmp(startCond)

	bu.SetBlock(startDone)
	bu.MovTo(ir.I32, size, bu.Bin(ir.Shl, ir.I32, size, one))
	bu.Jmp(sizeCond)

	bu.SetBlock(done)
	bu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
