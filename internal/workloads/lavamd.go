package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// LavaMD simulates short-range particle interactions within a grid of
// boxes (Rodinia).  The memoized kernel evaluates the pair potential from
// the displacement vector — (dx, dy, dz), 12 bytes, Table 2 — returning
// the packed (potential, force-scale) pair.  No truncation is applied
// (Table 2: 0 bits): redundancy comes from particles sitting on a
// lattice-like quantized position grid, so displacement vectors between
// pairs repeat exactly (see DESIGN.md for this input substitution).
func LavaMD() *Workload {
	return &Workload{
		Name:        "lavamd",
		Domain:      "Molecular Dynamics",
		Description: "Simulates particle interactions with charge",
		InputBytes:  "12",
		TruncBits:   []uint8{0},
		Build:       buildLavaMD,
		PaperScale:  6,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{0}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "pair",
				LUT:         0,
				InputParams: []int{0, 1, 2},
				ParamTrunc:  []uint8{t, t, t},
			}}
		},
		Setup:    setupLavaMD,
		MemBytes: func(scale int) int { return 1 << 21 },
	}
}

const (
	lavaBoxes   = 4 // boxes per side (2D grid of boxes)
	lavaPerBox  = 16
	lavaAlpha   = float32(0.5)
	lavaGridDiv = 4 // positions quantized to 1/4 within a box
)

func lavaCount(scale int) int {
	// Particles scale with the box occupancy.
	return lavaBoxes * lavaBoxes * lavaPerBox * scale
}

// pairGold mirrors the IR pair kernel.
func pairGold(dx, dy, dz float32) (v, fs float32) {
	r2 := dx*dx + dy*dy + dz*dz
	v = expf(-lavaAlpha * r2)
	fs = 2 * lavaAlpha * v
	return
}

type lavaParticle struct {
	x, y, z, q float32
}

// lavaGold computes per-particle potential and forces in float32.
func lavaGold(parts []lavaParticle, boxOf []int32, neighbors [][]int32, byBox [][]int32) []float64 {
	out := make([]float64, len(parts)*4)
	for i, pi := range parts {
		var e, fx, fy, fz float32
		for _, nb := range neighbors[boxOf[i]] {
			for _, j := range byBox[nb] {
				pj := parts[j]
				dx := pi.x - pj.x
				dy := pi.y - pj.y
				dz := pi.z - pj.z
				v, fs := pairGold(dx, dy, dz)
				e = e + v*pj.q
				fx = fx + fs*dx*pj.q
				fy = fy + fs*dy*pj.q
				fz = fz + fs*dz*pj.q
			}
		}
		out[4*i] = float64(e)
		out[4*i+1] = float64(fx)
		out[4*i+2] = float64(fy)
		out[4*i+3] = float64(fz)
	}
	return out
}

func setupLavaMD(img *cpu.Memory, scale int) *Instance {
	rng := rand.New(rand.NewSource(99))
	perBox := lavaPerBox * scale
	nBoxes := lavaBoxes * lavaBoxes
	n := nBoxes * perBox
	parts := make([]lavaParticle, n)
	boxOf := make([]int32, n)
	byBox := make([][]int32, nBoxes)
	for b := 0; b < nBoxes; b++ {
		bx := float32(b % lavaBoxes)
		by := float32(b / lavaBoxes)
		for k := 0; k < perBox; k++ {
			i := b*perBox + k
			parts[i] = lavaParticle{
				x: bx + float32(rng.Intn(lavaGridDiv))/lavaGridDiv,
				y: by + float32(rng.Intn(lavaGridDiv))/lavaGridDiv,
				z: float32(rng.Intn(lavaGridDiv)) / lavaGridDiv,
				q: float32(rng.Intn(3)) - 1, // charges in {-1, 0, 1}
			}
			boxOf[i] = int32(b)
			byBox[b] = append(byBox[b], int32(i))
		}
	}
	// Neighborhood: self + right + down (bounded stencil; see doc).
	neighbors := make([][]int32, nBoxes)
	for b := 0; b < nBoxes; b++ {
		neighbors[b] = []int32{int32(b)}
		if (b+1)%lavaBoxes != 0 {
			neighbors[b] = append(neighbors[b], int32(b+1))
		}
		if b+lavaBoxes < nBoxes {
			neighbors[b] = append(neighbors[b], int32(b+lavaBoxes))
		}
	}
	golden := lavaGold(parts, boxOf, neighbors, byBox)

	// Memory layout: particle array (x,y,z,q), a flattened neighbor
	// pair list (iStart, jStart, jCount) per (box, neighbor) is
	// unrolled on the host into a per-particle interaction list:
	// for simplicity the driver walks, per particle, a [start,count]
	// slice of a target-index array.
	pBase := img.Alloc(n * 16)
	for i, pt := range parts {
		img.SetF32(pBase+uint64(i*16), pt.x)
		img.SetF32(pBase+uint64(i*16)+4, pt.y)
		img.SetF32(pBase+uint64(i*16)+8, pt.z)
		img.SetF32(pBase+uint64(i*16)+12, pt.q)
	}
	// Target list per particle: all particles of all neighbor boxes.
	var targets []int32
	starts := make([]int32, n+1)
	for i := 0; i < n; i++ {
		starts[i] = int32(len(targets))
		for _, nb := range neighbors[boxOf[i]] {
			targets = append(targets, byBox[nb]...)
		}
	}
	starts[n] = int32(len(targets))
	tBase := img.Alloc(len(targets) * 4)
	for i, t := range targets {
		img.SetI32(tBase+uint64(i*4), t)
	}
	sBase := img.Alloc((n + 1) * 4)
	for i, s := range starts {
		img.SetI32(sBase+uint64(i*4), s)
	}
	oBase := img.Alloc(n * 16)
	return &Instance{
		Args:   []uint64{pBase, tBase, sBase, oBase, uint64(uint32(n))},
		N:      len(targets),
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, 4*n)
			for i := range out {
				out[i] = float64(img.F32(oBase + uint64(i*4)))
			}
			return out
		},
	}
}

func buildLavaMD() *ir.Program {
	p := ir.NewProgram("main")
	libm.BuildInto(p)

	// Kernel: pair(dx, dy, dz) -> (v, fs).
	k := p.NewFunc("pair", []ir.Type{ir.F32, ir.F32, ir.F32}, []ir.Type{ir.F32, ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	dx, dy, dz := k.Params[0], k.Params[1], k.Params[2]
	r2 := bu.Bin(ir.FAdd, ir.F32,
		bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FMul, ir.F32, dx, dx), bu.Bin(ir.FMul, ir.F32, dy, dy)),
		bu.Bin(ir.FMul, ir.F32, dz, dz))
	alpha := bu.ConstF32(lavaAlpha)
	v := bu.Call(libm.FnExp, 1, bu.Un(ir.FNeg, ir.F32, bu.Bin(ir.FMul, ir.F32, alpha, r2)))[0]
	twoA := bu.ConstF32(2 * lavaAlpha)
	fs := bu.Bin(ir.FMul, ir.F32, twoA, v)
	bu.Ret(v, fs)

	// Driver: main(parts, targets, starts, out, n).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	pB, tB, sB, oB, n := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
	zero := mbu.ConstI32(0)
	zf := mbu.ConstF32(0)

	pl := BeginLoop(mbu, f, zero, n)
	{
		pa := ElemAddr(mbu, pB, pl.I, 16)
		xi := mbu.Load(ir.F32, pa, 0)
		yi := mbu.Load(ir.F32, pa, 4)
		zi := mbu.Load(ir.F32, pa, 8)
		sa := ElemAddr(mbu, sB, pl.I, 4)
		start := mbu.Load(ir.I32, sa, 0)
		end := mbu.Load(ir.I32, sa, 4)
		e := mbu.Mov(ir.F32, zf)
		fx := mbu.Mov(ir.F32, zf)
		fy := mbu.Mov(ir.F32, zf)
		fz := mbu.Mov(ir.F32, zf)
		tl := BeginLoop(mbu, f, start, end)
		{
			ta := ElemAddr(mbu, tB, tl.I, 4)
			j := mbu.Load(ir.I32, ta, 0)
			pj := ElemAddr(mbu, pB, j, 16)
			xj := mbu.Load(ir.F32, pj, 0)
			yj := mbu.Load(ir.F32, pj, 4)
			zj := mbu.Load(ir.F32, pj, 8)
			qj := mbu.Load(ir.F32, pj, 12)
			dxv := mbu.Bin(ir.FSub, ir.F32, xi, xj)
			dyv := mbu.Bin(ir.FSub, ir.F32, yi, yj)
			dzv := mbu.Bin(ir.FSub, ir.F32, zi, zj)
			r := mbu.Call("pair", 2, dxv, dyv, dzv)
			vv, fsv := r[0], r[1]
			mbu.MovTo(ir.F32, e, mbu.Bin(ir.FAdd, ir.F32, e, mbu.Bin(ir.FMul, ir.F32, vv, qj)))
			mbu.MovTo(ir.F32, fx, mbu.Bin(ir.FAdd, ir.F32, fx, mbu.Bin(ir.FMul, ir.F32, mbu.Bin(ir.FMul, ir.F32, fsv, dxv), qj)))
			mbu.MovTo(ir.F32, fy, mbu.Bin(ir.FAdd, ir.F32, fy, mbu.Bin(ir.FMul, ir.F32, mbu.Bin(ir.FMul, ir.F32, fsv, dyv), qj)))
			mbu.MovTo(ir.F32, fz, mbu.Bin(ir.FAdd, ir.F32, fz, mbu.Bin(ir.FMul, ir.F32, mbu.Bin(ir.FMul, ir.F32, fsv, dzv), qj)))
		}
		tl.End(mbu)
		oa := ElemAddr(mbu, oB, pl.I, 16)
		mbu.Store(ir.F32, oa, 0, e)
		mbu.Store(ir.F32, oa, 4, fx)
		mbu.Store(ir.F32, oa, 8, fy)
		mbu.Store(ir.F32, oa, 12, fz)
	}
	pl.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
