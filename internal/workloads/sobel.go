package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// Sobel applies the Sobel edge-detection filter to an image (AxBench).
// The memoized kernel consumes the full 3×3 pixel window — nine
// floating-point values, 36 bytes, the paper's headline example of why
// concatenated tags are infeasible and CRC tags are needed (§2).  The
// window pixels are memory inputs, so the compiler rewrites the kernel's
// loads into ld_crc (ConvertLoads), truncating 16 LSBs per pixel.
func Sobel() *Workload {
	return &Workload{
		Name:        "sobel",
		Domain:      "Image Processing",
		Description: "Applies Sobel filter on an image",
		InputBytes:  "36",
		TruncBits:   []uint8{16},
		ImageOutput: true,
		Build:       buildSobel,
		PaperScale:  113,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{16}, trunc)
			return []compiler.Region{{
				Func:         "sobel3x3",
				LUT:          0,
				ConvertLoads: true,
				LoadTrunc:    tb[0],
			}}
		},
		Setup:    setupSobel,
		MemBytes: func(scale int) int { w, h := sobelDims(scale); return 1<<16 + w*h*8 },
	}
}

func sobelDims(scale int) (int, int) {
	side := 48
	for side*side < 48*48*scale {
		side *= 2
	}
	return side, side
}

// sobelGold mirrors the IR kernel: 3×3 window → clamped gradient
// magnitude.
func sobelGold(p [9]float32) float32 {
	gx := (p[2] + 2*p[5] + p[8]) - (p[0] + 2*p[3] + p[6])
	gy := (p[6] + 2*p[7] + p[8]) - (p[0] + 2*p[1] + p[2])
	mag := sqrtf(gx*gx + gy*gy)
	if mag > 255 {
		mag = 255
	}
	return mag
}

func setupSobel(img *cpu.Memory, scale int) *Instance {
	w, h := sobelDims(scale)
	pix := SyntheticImage(w, h, 77)
	// The AxBench driver converts RGB to a fractional gray plane; the
	// conversion leaves sub-unit fractions on every pixel.  Model that
	// with a small additive fraction: without truncation these make
	// every window tuple unique, and the Table 2 16-bit truncation
	// removes them — the Fig. 11 effect.
	rng := rand.New(rand.NewSource(78))
	for i := range pix {
		pix[i] = pix[i] + 0.25 + float32(rng.Float64()*0.4-0.2)
	}
	src := img.Alloc(w * h * 4)
	dst := img.Alloc(w * h * 4)
	for i, v := range pix {
		img.SetF32(src+uint64(i*4), v)
	}
	golden := make([]float64, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var win [9]float32
			for dy := 0; dy < 3; dy++ {
				for dx := 0; dx < 3; dx++ {
					win[dy*3+dx] = pix[(y-1+dy)*w+(x-1+dx)]
				}
			}
			golden[y*w+x] = float64(sobelGold(win))
		}
	}
	return &Instance{
		Args:   []uint64{src, dst, uint64(uint32(w)), uint64(uint32(h))},
		N:      (w - 2) * (h - 2),
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, w*h)
			for i := range out {
				out[i] = float64(img.F32(dst + uint64(i*4)))
			}
			return out
		},
	}
}

func buildSobel() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel: sobel3x3(row0, row1, row2) — three pointers to the
	// window's row starts; the nine loads below become ld_crc.
	k := p.NewFunc("sobel3x3", []ir.Type{ir.I64, ir.I64, ir.I64}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	var w [9]ir.Reg
	for row := 0; row < 3; row++ {
		for col := 0; col < 3; col++ {
			w[row*3+col] = bu.Load(ir.F32, k.Params[row], int64(col*4))
		}
	}
	two := bu.ConstF32(2)
	sum3 := func(a, b, c ir.Reg) ir.Reg {
		return bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, a, bu.Bin(ir.FMul, ir.F32, two, b)), c)
	}
	gx := bu.Bin(ir.FSub, ir.F32, sum3(w[2], w[5], w[8]), sum3(w[0], w[3], w[6]))
	gy := bu.Bin(ir.FSub, ir.F32, sum3(w[6], w[7], w[8]), sum3(w[0], w[1], w[2]))
	mag := bu.Un(ir.Sqrt, ir.F32,
		bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FMul, ir.F32, gx, gx), bu.Bin(ir.FMul, ir.F32, gy, gy)))
	cap255 := bu.ConstF32(255)
	mag = bu.Bin(ir.FMin, ir.F32, mag, cap255)
	bu.Ret(mag)

	// Driver: main(src, dst, w, h) — interior pixels only.
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	src, dst, wP, hP := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	one := mbu.ConstI32(1)
	four := mbu.ConstI64(4)
	hEnd := mbu.Bin(ir.Sub, ir.I32, hP, one)
	wEnd := mbu.Bin(ir.Sub, ir.I32, wP, one)

	yl := BeginLoop(mbu, f, one, hEnd)
	{
		xl := BeginLoop(mbu, f, one, wEnd)
		{
			// idx = y*w + x; window rows start at idx-w-1, idx-1, idx+w-1.
			idx := mbu.Bin(ir.Add, ir.I32, mbu.Bin(ir.Mul, ir.I32, yl.I, wP), xl.I)
			center := ElemAddr(mbu, src, idx, 4)
			wOff := mbu.Bin(ir.Mul, ir.I64, mbu.Cvt(ir.I32, ir.I64, wP), four)
			row1 := mbu.Bin(ir.Sub, ir.I64, center, four)
			row0 := mbu.Bin(ir.Sub, ir.I64, row1, wOff)
			row2 := mbu.Bin(ir.Add, ir.I64, row1, wOff)
			mag := mbu.Call("sobel3x3", 1, row0, row1, row2)[0]
			oa := ElemAddr(mbu, dst, idx, 4)
			mbu.Store(ir.F32, oa, 0, mag)
		}
		xl.End(mbu)
	}
	yl.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
