package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// Blackscholes prices European options (AxBench).  The memoized kernel
// takes the full six-input option tuple (24 bytes, Table 2) and returns
// the price; quantitative-finance inputs are heavily quantized (discrete
// strikes, rates, maturities), so exact repeats abound and no truncation
// is needed (Table 2: 0 bits).
func Blackscholes() *Workload {
	return &Workload{
		Name:        "blackscholes",
		Domain:      "Financial Analysis",
		Description: "Calculates the price of European-style options",
		InputBytes:  "24",
		TruncBits:   []uint8{0},
		Build:       buildBlackscholes,
		PaperScale:  50,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{0}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "bs_price",
				LUT:         0,
				InputParams: []int{0, 1, 2, 3, 4, 5},
				ParamTrunc:  []uint8{t, t, t, t, t, t},
			}}
		},
		Setup:    setupBlackscholes,
		MemBytes: func(scale int) int { return 1<<16 + bsCount(scale)*(24+4) },
	}
}

func bsCount(scale int) int { return 4000 * scale }

// option is one input tuple.
type option struct {
	s, k, r, v, t, otype float32
}

// bsPool generates the quantized option universe the samples draw from.
func bsPool(rng *rand.Rand, size int) []option {
	pool := make([]option, size)
	for i := range pool {
		pool[i] = option{
			s:     float32(80 + rng.Intn(41)),         // $80..$120, $1 grid
			k:     float32(75 + 5*rng.Intn(11)),       // $75..$125, $5 grid
			r:     float32(rng.Intn(17))*0.005 + 0.02, // 2%..10%
			v:     float32(rng.Intn(11))*0.05 + 0.10,  // 10%..60%
			t:     []float32{0.25, 0.5, 1, 2}[rng.Intn(4)],
			otype: float32(rng.Intn(2)),
		}
	}
	return pool
}

// cndfGold mirrors the IR cndf helper in float32.
func cndfGold(x float32) float32 {
	ax := fabsf(x)
	k := 1 / (1 + 0.2316419*ax)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	w := 1 - 0.39894228*expf(-0.5*ax*ax)*poly
	if x < 0 {
		return 1 - w
	}
	return w
}

// bsPriceGold mirrors the IR bs_price kernel in float32.
func bsPriceGold(o option) float32 {
	sqrtT := sqrtf(o.t)
	d1 := (logf(o.s/o.k) + (o.r+0.5*o.v*o.v)*o.t) / (o.v * sqrtT)
	d2 := d1 - o.v*sqrtT
	n1 := cndfGold(d1)
	n2 := cndfGold(d2)
	expRT := expf(-o.r * o.t)
	call := o.s*n1 - o.k*expRT*n2
	put := o.k*expRT*(1-n2) - o.s*(1-n1)
	return call + o.otype*(put-call)
}

func setupBlackscholes(img *cpu.Memory, scale int) *Instance {
	rng := rand.New(rand.NewSource(42))
	pool := bsPool(rng, 256)
	n := bsCount(scale)
	src := img.Alloc(n * 24)
	dst := img.Alloc(n * 4)
	golden := make([]float64, n)
	for i := 0; i < n; i++ {
		o := pool[rng.Intn(len(pool))]
		base := src + uint64(i*24)
		img.SetF32(base+0, o.s)
		img.SetF32(base+4, o.k)
		img.SetF32(base+8, o.r)
		img.SetF32(base+12, o.v)
		img.SetF32(base+16, o.t)
		img.SetF32(base+20, o.otype)
		golden[i] = float64(bsPriceGold(o))
	}
	return &Instance{
		Args:   []uint64{src, dst, uint64(uint32(n))},
		N:      n,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(img.F32(dst + uint64(i*4)))
			}
			return out
		},
	}
}

// buildCNDF emits the cumulative-normal helper used twice by the kernel
// (Abramowitz–Stegun 7.1.26, as in the PARSEC source).
func buildCNDF(p *ir.Program) {
	f := p.NewFunc("cndf", []ir.Type{ir.F32}, []ir.Type{ir.F32})
	bb := f.NewBlock("entry")
	bu := ir.At(f, bb)
	x := f.Params[0]
	ax := bu.Un(ir.FAbs, ir.F32, x)
	one := bu.ConstF32(1)
	kden := bu.Bin(ir.FAdd, ir.F32, one, bu.Bin(ir.FMul, ir.F32, bu.ConstF32(0.2316419), ax))
	k := bu.Bin(ir.FDiv, ir.F32, one, kden)
	// Horner evaluation of the quintic.
	poly := bu.ConstF32(1.330274429)
	poly = bu.Bin(ir.FAdd, ir.F32, bu.ConstF32(-1.821255978), bu.Bin(ir.FMul, ir.F32, k, poly))
	poly = bu.Bin(ir.FAdd, ir.F32, bu.ConstF32(1.781477937), bu.Bin(ir.FMul, ir.F32, k, poly))
	poly = bu.Bin(ir.FAdd, ir.F32, bu.ConstF32(-0.356563782), bu.Bin(ir.FMul, ir.F32, k, poly))
	poly = bu.Bin(ir.FAdd, ir.F32, bu.ConstF32(0.319381530), bu.Bin(ir.FMul, ir.F32, k, poly))
	poly = bu.Bin(ir.FMul, ir.F32, k, poly)
	half := bu.ConstF32(-0.5)
	gauss := bu.Call(libm.FnExp, 1, bu.Bin(ir.FMul, ir.F32, half, bu.Bin(ir.FMul, ir.F32, ax, ax)))[0]
	w := bu.Bin(ir.FSub, ir.F32, one,
		bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FMul, ir.F32, bu.ConstF32(0.39894228), gauss), poly))
	// Branchless sign fold: result = w + neg*(1-2w).
	zero := bu.ConstF32(0)
	negI := bu.Bin(ir.CmpLT, ir.F32, x, zero)
	neg := bu.Cvt(ir.I32, ir.F32, negI)
	two := bu.ConstF32(2)
	res := bu.Bin(ir.FAdd, ir.F32, w,
		bu.Bin(ir.FMul, ir.F32, neg, bu.Bin(ir.FSub, ir.F32, one, bu.Bin(ir.FMul, ir.F32, two, w))))
	bu.Ret(res)
}

func buildBlackscholes() *ir.Program {
	p := ir.NewProgram("main")
	libm.BuildInto(p)
	buildCNDF(p)

	// Kernel: bs_price(S, K, r, v, T, otype) -> price.
	k := p.NewFunc("bs_price", []ir.Type{ir.F32, ir.F32, ir.F32, ir.F32, ir.F32, ir.F32}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	s, kk, r, v, tt, otype := k.Params[0], k.Params[1], k.Params[2], k.Params[3], k.Params[4], k.Params[5]
	sqrtT := bu.Un(ir.Sqrt, ir.F32, tt)
	half := bu.ConstF32(0.5)
	vv := bu.Bin(ir.FMul, ir.F32, v, v)
	drift := bu.Bin(ir.FAdd, ir.F32, r, bu.Bin(ir.FMul, ir.F32, half, vv))
	lg := bu.Call(libm.FnLog, 1, bu.Bin(ir.FDiv, ir.F32, s, kk))[0]
	num := bu.Bin(ir.FAdd, ir.F32, lg, bu.Bin(ir.FMul, ir.F32, drift, tt))
	den := bu.Bin(ir.FMul, ir.F32, v, sqrtT)
	d1 := bu.Bin(ir.FDiv, ir.F32, num, den)
	d2 := bu.Bin(ir.FSub, ir.F32, d1, den)
	n1 := bu.Call("cndf", 1, d1)[0]
	n2 := bu.Call("cndf", 1, d2)[0]
	expRT := bu.Call(libm.FnExp, 1, bu.Un(ir.FNeg, ir.F32, bu.Bin(ir.FMul, ir.F32, r, tt)))[0]
	one := bu.ConstF32(1)
	call := bu.Bin(ir.FSub, ir.F32,
		bu.Bin(ir.FMul, ir.F32, s, n1),
		bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FMul, ir.F32, kk, expRT), n2))
	put := bu.Bin(ir.FSub, ir.F32,
		bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FMul, ir.F32, kk, expRT), bu.Bin(ir.FSub, ir.F32, one, n2)),
		bu.Bin(ir.FMul, ir.F32, s, bu.Bin(ir.FSub, ir.F32, one, n1)))
	price := bu.Bin(ir.FAdd, ir.F32, call,
		bu.Bin(ir.FMul, ir.F32, otype, bu.Bin(ir.FSub, ir.F32, put, call)))
	bu.Ret(price)

	// Driver: main(src, dst, n) prices each option tuple.
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	zero := mbu.ConstI32(0)
	l := BeginLoop(mbu, f, zero, f.Params[2])
	src := ElemAddr(mbu, f.Params[0], l.I, 24)
	sV := mbu.Load(ir.F32, src, 0)
	kV := mbu.Load(ir.F32, src, 4)
	rV := mbu.Load(ir.F32, src, 8)
	vV := mbu.Load(ir.F32, src, 12)
	tV := mbu.Load(ir.F32, src, 16)
	oV := mbu.Load(ir.F32, src, 20)
	priced := mbu.Call("bs_price", 1, sV, kV, rV, vV, tV, oV)[0]
	dst := ElemAddr(mbu, f.Params[1], l.I, 4)
	mbu.Store(ir.F32, dst, 0, priced)
	l.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
