package workloads

import (
	"testing"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
	"axmemo/internal/quality"
)

// TestProgramsRoundTripThroughTextIR: every benchmark program survives
// Dump → Parse → Dump unchanged, and the re-parsed program produces
// exactly the same baseline outputs — the textual IR is a faithful
// serialization of the whole workload suite.
func TestProgramsRoundTripThroughTextIR(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			orig := w.Build()
			text := orig.Dump()
			parsed, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if again := parsed.Dump(); again != text {
				t.Fatal("dump → parse → dump diverged")
			}

			// The re-parsed program must compute identical outputs.
			imgA := cpu.NewMemory(w.MemBytes(1))
			instA := w.Setup(imgA, 1)
			mA, err := cpu.New(orig, imgA, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mA.Run(instA.Args...); err != nil {
				t.Fatal(err)
			}

			imgB := cpu.NewMemory(w.MemBytes(1))
			instB := w.Setup(imgB, 1)
			mB, err := cpu.New(parsed, imgB, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mB.Run(instB.Args...); err != nil {
				t.Fatal(err)
			}

			if w.Misclass {
				a, b := instA.OutputsBool(imgA), instB.OutputsBool(imgB)
				mc, err := quality.Misclassification(a, b)
				if err != nil || mc != 0 {
					t.Fatalf("outputs differ after round trip: %v %v", mc, err)
				}
			} else {
				a, b := instA.Outputs(imgA), instB.Outputs(imgB)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("output %d differs after round trip: %v vs %v", i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestTransformedProgramRoundTrips: the memoized (compiler-transformed)
// program also survives the text format, memo instructions included.
func TestTransformedProgramRoundTrips(t *testing.T) {
	for _, name := range []string{"blackscholes", "sobel", "jpeg"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := w.Build()
		if err := compiler.Transform(prog, w.Regions(nil)); err != nil {
			t.Fatal(err)
		}
		text := prog.Dump()
		parsed, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse transformed program: %v", name, err)
		}
		if parsed.Dump() != text {
			t.Fatalf("%s: transformed program round trip diverged", name)
		}
	}
}
