package workloads

import (
	"math/rand"

	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// KMeans clusters the pixels of an RGB image into K=4 color clusters
// (AxBench).  The memoized kernel is the per-pixel assignment: its inputs
// are the pixel's (r, g, b) — 12 bytes, Table 2 — truncated by 16 bits so
// perceptually identical colors share a LUT entry.  The centroids are
// read from fixed memory inside the kernel (they are constant within an
// iteration); the driver issues `invalidate` between iterations because
// the centroids — and therefore the memoized function — change.  This is
// the workload that exercises the invalidate instruction.
func KMeans() *Workload {
	return &Workload{
		Name:        "kmeans",
		Domain:      "Machine Learning",
		Description: "K-means clustering on an image",
		InputBytes:  "12",
		TruncBits:   []uint8{16},
		ImageOutput: true,
		Build:       buildKMeans,
		PaperScale:  113,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{16}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "assign",
				LUT:         0,
				InputParams: []int{0, 1, 2}, // the centroid pointer (param 3) is not a value
				ParamTrunc:  []uint8{t, t, t},
				EpochFunc:   "epoch",
			}}
		},
		Setup:    setupKMeans,
		MemBytes: func(scale int) int { w, h := kmeansDims(scale); return 1<<16 + w*h*32 },
	}
}

func kmeansDims(scale int) (int, int) {
	side := 48
	for side*side < 48*48*scale {
		side *= 2
	}
	return side, side
}

const (
	kmK     = 4
	kmIters = 2
)

var kmInitCent = [kmK][3]float32{
	{32, 32, 32}, {96, 96, 96}, {160, 160, 160}, {224, 224, 224},
}

// assignGold mirrors the IR assign kernel.  As in the AxBench source, the
// distance is the euclidean distance (with the sqrt), not its square.
func assignGold(r, g, b float32, cent *[kmK][3]float32) int32 {
	best := int32(0)
	var bestD float32
	for c := 0; c < kmK; c++ {
		dr := r - cent[c][0]
		dg := g - cent[c][1]
		db := b - cent[c][2]
		d := sqrtf(dr*dr + dg*dg + db*db)
		if c == 0 || d < bestD {
			bestD = d
			best = int32(c)
		}
	}
	return best
}

// kmeansGold runs the full 2-iteration clustering in float32 and returns
// the per-pixel centroid colors.
func kmeansGold(r, g, b []float32) []float64 {
	n := len(r)
	cent := kmInitCent
	asg := make([]int32, n)
	for it := 0; it < kmIters; it++ {
		var sum [kmK][3]float32
		var cnt [kmK]float32
		for i := 0; i < n; i++ {
			a := assignGold(r[i], g[i], b[i], &cent)
			asg[i] = a
			sum[a][0] += r[i]
			sum[a][1] += g[i]
			sum[a][2] += b[i]
			cnt[a]++
		}
		for c := 0; c < kmK; c++ {
			if cnt[c] > 0 {
				cent[c][0] = sum[c][0] / cnt[c]
				cent[c][1] = sum[c][1] / cnt[c]
				cent[c][2] = sum[c][2] / cnt[c]
			}
		}
	}
	out := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		out[3*i] = float64(cent[asg[i]][0])
		out[3*i+1] = float64(cent[asg[i]][1])
		out[3*i+2] = float64(cent[asg[i]][2])
	}
	return out
}

func setupKMeans(img *cpu.Memory, scale int) *Instance {
	w, h := kmeansDims(scale)
	n := w * h
	r, g, b := SyntheticRGBImage(w, h, 55)
	// Camera pixels carry sub-level fractions from white balance and
	// demosaicing; Table 2's 16-bit truncation folds them away so
	// perceptually identical colors share a LUT entry (Fig. 11).
	rng := rand.New(rand.NewSource(56))
	dither := func(v float32) float32 { return v + 0.25 + float32(rng.Float64()*0.4-0.2) }
	for i := range r {
		r[i] = dither(r[i])
		g[i] = dither(g[i])
		b[i] = dither(b[i])
	}
	pixBase := img.Alloc(n * 12)
	for i := 0; i < n; i++ {
		img.SetF32(pixBase+uint64(i*12), r[i])
		img.SetF32(pixBase+uint64(i*12)+4, g[i])
		img.SetF32(pixBase+uint64(i*12)+8, b[i])
	}
	centBase := img.Alloc(kmK * 12)
	for c := 0; c < kmK; c++ {
		img.SetF32(centBase+uint64(c*12), kmInitCent[c][0])
		img.SetF32(centBase+uint64(c*12)+4, kmInitCent[c][1])
		img.SetF32(centBase+uint64(c*12)+8, kmInitCent[c][2])
	}
	sumBase := img.Alloc(kmK * 16) // sumR, sumG, sumB, count per cluster
	asgBase := img.Alloc(n * 4)
	outBase := img.Alloc(n * 12)
	golden := kmeansGold(r, g, b)
	return &Instance{
		Args:   []uint64{pixBase, centBase, sumBase, asgBase, outBase, uint64(uint32(n))},
		N:      n * kmIters,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, 3*n)
			for i := 0; i < n; i++ {
				out[3*i] = float64(img.F32(outBase + uint64(i*12)))
				out[3*i+1] = float64(img.F32(outBase + uint64(i*12) + 4))
				out[3*i+2] = float64(img.F32(outBase + uint64(i*12) + 8))
			}
			return out
		},
	}
}

func buildKMeans() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel: assign(r, g, b, centBase) -> cluster index.
	k := p.NewFunc("assign", []ir.Type{ir.F32, ir.F32, ir.F32, ir.I64}, []ir.Type{ir.I32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	r, g, b, cb := k.Params[0], k.Params[1], k.Params[2], k.Params[3]
	var best, bestD ir.Reg
	for c := 0; c < kmK; c++ {
		cr := bu.Load(ir.F32, cb, int64(c*12))
		cg := bu.Load(ir.F32, cb, int64(c*12+4))
		cbv := bu.Load(ir.F32, cb, int64(c*12+8))
		dr := bu.Bin(ir.FSub, ir.F32, r, cr)
		dg := bu.Bin(ir.FSub, ir.F32, g, cg)
		db := bu.Bin(ir.FSub, ir.F32, b, cbv)
		d := bu.Un(ir.Sqrt, ir.F32, bu.Bin(ir.FAdd, ir.F32,
			bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FMul, ir.F32, dr, dr), bu.Bin(ir.FMul, ir.F32, dg, dg)),
			bu.Bin(ir.FMul, ir.F32, db, db)))
		if c == 0 {
			best = bu.ConstI32(0)
			bestD = bu.Mov(ir.F32, d)
		} else {
			lt := bu.Bin(ir.CmpLT, ir.F32, d, bestD)
			cIdx := bu.ConstI32(int32(c))
			diff := bu.Bin(ir.Sub, ir.I32, cIdx, best)
			bu.MovTo(ir.I32, best, bu.Bin(ir.Add, ir.I32, best, bu.Bin(ir.Mul, ir.I32, lt, diff)))
			bu.MovTo(ir.F32, bestD, bu.Bin(ir.FMin, ir.F32, bestD, d))
		}
	}
	bu.Ret(best)

	// Epoch marker: called after each centroid update; the AxMemo
	// compiler injects `invalidate` here because the memoized mapping
	// (pixel → cluster under the current centroids) has changed.
	ep := p.NewFunc("epoch", nil, nil)
	epb := ep.NewBlock("entry")
	ir.At(ep, epb).Ret()

	// Driver: main(pix, cent, sums, asg, out, n).
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I64, ir.I64, ir.I64, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	pix, cent, sums, asg, out, n := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4], f.Params[5]
	zeroI := mbu.ConstI32(0)
	zeroF := mbu.ConstF32(0)
	oneF := mbu.ConstF32(1)

	iterLoop := LoopN(mbu, f, kmIters)
	{
		// Zero the accumulators.
		zl := LoopN(mbu, f, kmK)
		sa := ElemAddr(mbu, sums, zl.I, 16)
		mbu.Store(ir.F32, sa, 0, zeroF)
		mbu.Store(ir.F32, sa, 4, zeroF)
		mbu.Store(ir.F32, sa, 8, zeroF)
		mbu.Store(ir.F32, sa, 12, zeroF)
		zl.End(mbu)

		// Assignment pass.
		pl := BeginLoop(mbu, f, zeroI, n)
		{
			pa := ElemAddr(mbu, pix, pl.I, 12)
			rv := mbu.Load(ir.F32, pa, 0)
			gv := mbu.Load(ir.F32, pa, 4)
			bv := mbu.Load(ir.F32, pa, 8)
			idx := mbu.Call("assign", 1, rv, gv, bv, cent)[0]
			aa := ElemAddr(mbu, asg, pl.I, 4)
			mbu.Store(ir.I32, aa, 0, idx)
			sa := ElemAddr(mbu, sums, idx, 16)
			mbu.Store(ir.F32, sa, 0, mbu.Bin(ir.FAdd, ir.F32, mbu.Load(ir.F32, sa, 0), rv))
			mbu.Store(ir.F32, sa, 4, mbu.Bin(ir.FAdd, ir.F32, mbu.Load(ir.F32, sa, 4), gv))
			mbu.Store(ir.F32, sa, 8, mbu.Bin(ir.FAdd, ir.F32, mbu.Load(ir.F32, sa, 8), bv))
			mbu.Store(ir.F32, sa, 12, mbu.Bin(ir.FAdd, ir.F32, mbu.Load(ir.F32, sa, 12), oneF))
		}
		pl.End(mbu)

		// Centroid update (skip empty clusters), then invalidate the
		// assignment LUT: the memoized function changed.
		cl := LoopN(mbu, f, kmK)
		{
			sa := ElemAddr(mbu, sums, cl.I, 16)
			cnt := mbu.Load(ir.F32, sa, 12)
			nonEmpty := mbu.Bin(ir.CmpGT, ir.F32, cnt, zeroF)
			upd := f.NewBlock("cent.update")
			skip := f.NewBlock("cent.skip")
			mbu.Br(nonEmpty, upd, skip)
			mbu.SetBlock(upd)
			ca := ElemAddr(mbu, cent, cl.I, 12)
			mbu.Store(ir.F32, ca, 0, mbu.Bin(ir.FDiv, ir.F32, mbu.Load(ir.F32, sa, 0), cnt))
			mbu.Store(ir.F32, ca, 4, mbu.Bin(ir.FDiv, ir.F32, mbu.Load(ir.F32, sa, 4), cnt))
			mbu.Store(ir.F32, ca, 8, mbu.Bin(ir.FDiv, ir.F32, mbu.Load(ir.F32, sa, 8), cnt))
			mbu.Jmp(skip)
			mbu.SetBlock(skip)
		}
		cl.End(mbu)
		mbu.Call("epoch", 0)
	}
	iterLoop.End(mbu)

	// Emit the clustered image: each pixel gets its centroid color.
	ol := BeginLoop(mbu, f, zeroI, n)
	{
		aa := ElemAddr(mbu, asg, ol.I, 4)
		idx := mbu.Load(ir.I32, aa, 0)
		ca := ElemAddr(mbu, cent, idx, 12)
		oa := ElemAddr(mbu, out, ol.I, 12)
		mbu.Store(ir.F32, oa, 0, mbu.Load(ir.F32, ca, 0))
		mbu.Store(ir.F32, oa, 4, mbu.Load(ir.F32, ca, 4))
		mbu.Store(ir.F32, oa, 8, mbu.Load(ir.F32, ca, 8))
	}
	ol.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
