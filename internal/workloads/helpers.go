package workloads

import (
	"math"
	"math/rand"

	"axmemo/internal/ir"
	"axmemo/internal/libm"
)

// Loop is a counted-loop scaffold for IR construction:
//
//	l := BeginLoop(bu, f, start, limit)   // bu now at the body block
//	... emit body using l.I ...
//	l.End(bu)                             // bu now at the exit block
//
// Loops nest naturally.  The induction variable l.I is an i32 register.
type Loop struct {
	I    ir.Reg
	cond *ir.Block
	body *ir.Block
	done *ir.Block
	one  ir.Reg
}

// BeginLoop emits `for I := start; I < limit; I++` and leaves the builder
// positioned in the body block.
func BeginLoop(bu *ir.Builder, f *ir.Function, start, limit ir.Reg) *Loop {
	l := &Loop{
		cond: f.NewBlock("loop.cond"),
		body: f.NewBlock("loop.body"),
		done: f.NewBlock("loop.done"),
	}
	l.I = bu.Mov(ir.I32, start)
	l.one = bu.ConstI32(1)
	bu.Jmp(l.cond)
	bu.SetBlock(l.cond)
	c := bu.Bin(ir.CmpLT, ir.I32, l.I, limit)
	bu.Br(c, l.body, l.done)
	bu.SetBlock(l.body)
	return l
}

// End closes the loop body and positions the builder at the exit block.
func (l *Loop) End(bu *ir.Builder) {
	next := bu.Bin(ir.Add, ir.I32, l.I, l.one)
	bu.MovTo(ir.I32, l.I, next)
	bu.Jmp(l.cond)
	bu.SetBlock(l.done)
}

// LoopN is BeginLoop with a constant trip count.
func LoopN(bu *ir.Builder, f *ir.Function, n int32) *Loop {
	zero := bu.ConstI32(0)
	lim := bu.ConstI32(n)
	return BeginLoop(bu, f, zero, lim)
}

// ElemAddr emits address arithmetic base + idx*stride (+ byteOff) and
// returns the i64 address register.
func ElemAddr(bu *ir.Builder, base ir.Reg, idx ir.Reg, stride int64) ir.Reg {
	s := bu.ConstI64(stride)
	i64 := bu.Cvt(ir.I32, ir.I64, idx)
	off := bu.Bin(ir.Mul, ir.I64, i64, s)
	return bu.Bin(ir.Add, ir.I64, base, off)
}

// SyntheticImage generates a w×h grayscale image with the statistics
// memoization cares about: smooth large-scale structure (sums of a few
// sinusoids), mild noise, and quantization to integer 8-bit levels — the
// value locality of natural images that makes truncated inputs repeat.
// It stands in for the benchmark suites' 512×512 input images.
func SyntheticImage(w, h int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	// Natural photographs are dominated by flat regions (sky, walls),
	// slow gradients, and object boundaries whose edge profile repeats
	// along the edge — exactly the window-level redundancy Sobel/JPEG
	// memoization exploits.  Synthesize that structure directly: a
	// quantized linear-gradient background plus constant-fill shapes.
	gx := float64(rng.Intn(3)) * 0.25 // sky-like slow gradients
	gy := float64(rng.Intn(3)) * 0.25
	base := 48 + rng.Float64()*48
	img := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img[y*w+x] = float32(base + gx*float64(x) + gy*float64(y))
		}
	}
	// Constant-fill rectangles (buildings, walls — most of a photo's
	// area is flat).
	for s := 0; s < 8; s++ {
		x0 := rng.Intn(w)
		y0 := rng.Intn(h)
		ww := 4 + rng.Intn(w/2)
		hh := 4 + rng.Intn(h/2)
		fill := float32(rng.Intn(32) * 8)
		for y := y0; y < y0+hh && y < h; y++ {
			for x := x0; x < x0+ww && x < w; x++ {
				img[y*w+x] = fill
			}
		}
	}
	// Constant-fill disks.
	for s := 0; s < 4; s++ {
		cx := rng.Intn(w)
		cy := rng.Intn(h)
		rad := 2 + rng.Intn(w/4)
		fill := float32(rng.Intn(32) * 8)
		for y := cy - rad; y <= cy+rad; y++ {
			for x := cx - rad; x <= cx+rad; x++ {
				if x < 0 || y < 0 || x >= w || y >= h {
					continue
				}
				dx, dy := x-cx, y-cy
				if dx*dx+dy*dy <= rad*rad {
					img[y*w+x] = fill
				}
			}
		}
	}
	// 8-bit sensor quantization and clamping.
	for i, v := range img {
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		img[i] = float32(math.Floor(float64(v)))
	}
	return img
}

// SyntheticRGBImage generates three correlated channels from a base
// luminance image (for K-means and Sobel's RGB input).
func SyntheticRGBImage(w, h int, seed int64) (r, g, b []float32) {
	lum := SyntheticImage(w, h, seed)
	shift := SyntheticImage(w, h, seed+101)
	r = make([]float32, w*h)
	g = make([]float32, w*h)
	b = make([]float32, w*h)
	for i := range lum {
		r[i] = clamp255(lum[i])
		g[i] = clamp255(lum[i]*0.75 + shift[i]*0.25)
		b[i] = clamp255(255 - lum[i]*0.5)
		r[i] = float32(math.Floor(float64(r[i])))
		g[i] = float32(math.Floor(float64(g[i])))
		b[i] = float32(math.Floor(float64(b[i])))
	}
	return
}

func clamp255(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Float32 math helpers mirroring the simulator's semantics exactly.
// sqrt, |x| and floor are hardware instructions (single rounding, matching
// Go float32 semantics); the transcendental functions go through the
// internal/libm software routines, whose Go mirrors are bit-identical to
// the IR implementations the simulated kernels call.

func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }
func expf(x float32) float32  { return libm.Expf(x) }
func logf(x float32) float32  { return libm.Logf(x) }
func sinf(x float32) float32  { return libm.Sinf(x) }
func cosf(x float32) float32  { return libm.Cosf(x) }
func acosf(x float32) float32 { return libm.Acosf(x) }
func atan2f(y, x float32) float32 {
	return libm.Atan2f(y, x)
}
func fabsf(x float32) float32 { return float32(math.Abs(float64(x))) }
func floorf(x float32) float32 {
	return float32(math.Floor(float64(x)))
}

// newTestRng returns a deterministic RNG for test data generation.
func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
