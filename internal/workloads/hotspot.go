package workloads

import (
	"axmemo/internal/compiler"
	"axmemo/internal/cpu"
	"axmemo/internal/ir"
)

// Hotspot simulates the temperature of an IC chip from per-cell power
// (Rodinia).  The memoized kernel computes the new cell temperature from
// four inputs — 16 bytes, Table 2: the center temperature, the summed
// north/south and east/west neighbor temperatures (the cheap sums stay in
// the driver), and the cell power.  Large die regions sit at ambient
// temperature, so truncated inputs repeat heavily.
func Hotspot() *Workload {
	return &Workload{
		Name:        "hotspot",
		Domain:      "Physics Simulation",
		Description: "Simulates the temperature of an IC chip",
		InputBytes:  "16",
		TruncBits:   []uint8{8},
		Build:       buildHotspot,
		PaperScale:  113,
		Regions: func(trunc []uint8) []compiler.Region {
			tb := regionTrunc([]uint8{8}, trunc)
			t := tb[0]
			return []compiler.Region{{
				Func:        "hs_cell",
				LUT:         0,
				InputParams: []int{0, 1, 2, 3},
				ParamTrunc:  []uint8{t, t, t, t},
			}}
		},
		Setup:    setupHotspot,
		MemBytes: func(scale int) int { w, h := hotspotDims(scale); return 1<<16 + w*h*16 },
	}
}

func hotspotDims(scale int) (int, int) {
	side := 48
	for side*side < 48*48*scale {
		side *= 2
	}
	return side, side
}

const (
	hsIters = 4
	hsAmb   = float32(80.0)
	hsRx    = float32(10.0)
	hsRy    = float32(8.0)
	hsRz    = float32(40.0)
	hsCap   = float32(0.5)
)

// hsCellGold mirrors the IR kernel.  As in the Rodinia source, the
// resistances enter as precomputed reciprocals — the stencil is pure
// multiply/add.
func hsCellGold(center, nsSum, ewSum, power float32) float32 {
	dNS := (nsSum - 2*center) * (1 / hsRy)
	dEW := (ewSum - 2*center) * (1 / hsRx)
	dZ := (hsAmb - center) * (1 / hsRz)
	delta := hsCap * (power + dNS + dEW + dZ)
	return center + delta
}

// hotspotGold runs the full stencil in float32 (interior cells; borders
// pinned).
func hotspotGold(temp, power []float32, w, h int) []float64 {
	cur := append([]float32{}, temp...)
	next := append([]float32{}, temp...)
	for it := 0; it < hsIters; it++ {
		for y := 1; y < h-1; y++ {
			for x := 1; x < w-1; x++ {
				i := y*w + x
				ns := cur[i-w] + cur[i+w]
				ew := cur[i-1] + cur[i+1]
				next[i] = hsCellGold(cur[i], ns, ew, power[i])
			}
		}
		cur, next = next, cur
	}
	out := make([]float64, w*h)
	for i, v := range cur {
		out[i] = float64(v)
	}
	return out
}

func setupHotspot(img *cpu.Memory, scale int) *Instance {
	w, h := hotspotDims(scale)
	n := w * h
	temp := make([]float32, n)
	power := make([]float32, n)
	for i := range temp {
		temp[i] = hsAmb // uniform ambient start
	}
	// A few localized power hotspots (quantized), as on a real
	// floorplan; most of the die stays quiet and at ambient.
	blobs := [][3]int{{w / 4, h / 4, 4}, {3 * w / 4, h / 3, 3}, {w / 2, 3 * h / 4, 5}}
	for _, bl := range blobs {
		cx, cy, rad := bl[0], bl[1], bl[2]
		for y := cy - rad; y <= cy+rad; y++ {
			for x := cx - rad; x <= cx+rad; x++ {
				if x < 0 || y < 0 || x >= w || y >= h {
					continue
				}
				dx, dy := x-cx, y-cy
				if dx*dx+dy*dy <= rad*rad {
					power[y*w+x] = 2.0
				}
			}
		}
	}
	tA := img.Alloc(n * 4)
	tB := img.Alloc(n * 4)
	pA := img.Alloc(n * 4)
	for i := 0; i < n; i++ {
		img.SetF32(tA+uint64(i*4), temp[i])
		img.SetF32(tB+uint64(i*4), temp[i])
		img.SetF32(pA+uint64(i*4), power[i])
	}
	golden := hotspotGold(temp, power, w, h)
	// After hsIters ping-pong swaps the result lives in tA when
	// hsIters is even, tB when odd.
	resBase := tA
	if hsIters%2 == 1 {
		resBase = tB
	}
	return &Instance{
		Args:   []uint64{tA, tB, pA, uint64(uint32(w)), uint64(uint32(h))},
		N:      (w - 2) * (h - 2) * hsIters,
		Golden: golden,
		Outputs: func(img *cpu.Memory) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(img.F32(resBase + uint64(i*4)))
			}
			return out
		},
	}
}

func buildHotspot() *ir.Program {
	p := ir.NewProgram("main")

	// Kernel: hs_cell(center, nsSum, ewSum, power) -> newTemp.
	k := p.NewFunc("hs_cell", []ir.Type{ir.F32, ir.F32, ir.F32, ir.F32}, []ir.Type{ir.F32})
	kb := k.NewBlock("entry")
	bu := ir.At(k, kb)
	center, ns, ew, pw := k.Params[0], k.Params[1], k.Params[2], k.Params[3]
	two := bu.ConstF32(2)
	c2 := bu.Bin(ir.FMul, ir.F32, two, center)
	ryInv := bu.ConstF32(1 / hsRy)
	rxInv := bu.ConstF32(1 / hsRx)
	rzInv := bu.ConstF32(1 / hsRz)
	amb := bu.ConstF32(hsAmb)
	capC := bu.ConstF32(hsCap)
	dNS := bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FSub, ir.F32, ns, c2), ryInv)
	dEW := bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FSub, ir.F32, ew, c2), rxInv)
	dZ := bu.Bin(ir.FMul, ir.F32, bu.Bin(ir.FSub, ir.F32, amb, center), rzInv)
	sum := bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, bu.Bin(ir.FAdd, ir.F32, pw, dNS), dEW), dZ)
	delta := bu.Bin(ir.FMul, ir.F32, capC, sum)
	bu.Ret(bu.Bin(ir.FAdd, ir.F32, center, delta))

	// Driver: main(tA, tB, power, w, h): hsIters ping-pong steps.
	f := p.NewFunc("main", []ir.Type{ir.I64, ir.I64, ir.I64, ir.I32, ir.I32}, nil)
	fb := f.NewBlock("entry")
	mbu := ir.At(f, fb)
	tA, tB, pw2, wP, hP := f.Params[0], f.Params[1], f.Params[2], f.Params[3], f.Params[4]
	one := mbu.ConstI32(1)
	four := mbu.ConstI64(4)
	hEnd := mbu.Bin(ir.Sub, ir.I32, hP, one)
	wEnd := mbu.Bin(ir.Sub, ir.I32, wP, one)
	wOff := mbu.Bin(ir.Mul, ir.I64, mbu.Cvt(ir.I32, ir.I64, wP), four)
	cur := mbu.Mov(ir.I64, tA)
	nxt := mbu.Mov(ir.I64, tB)

	il := LoopN(mbu, f, hsIters)
	{
		yl := BeginLoop(mbu, f, one, hEnd)
		{
			xl := BeginLoop(mbu, f, one, wEnd)
			{
				idx := mbu.Bin(ir.Add, ir.I32, mbu.Bin(ir.Mul, ir.I32, yl.I, wP), xl.I)
				ca := ElemAddr(mbu, cur, idx, 4)
				north := mbu.Load(ir.F32, mbu.Bin(ir.Sub, ir.I64, ca, wOff), 0)
				south := mbu.Load(ir.F32, mbu.Bin(ir.Add, ir.I64, ca, wOff), 0)
				west := mbu.Load(ir.F32, ca, -4)
				east := mbu.Load(ir.F32, ca, 4)
				cv := mbu.Load(ir.F32, ca, 0)
				nsSum := mbu.Bin(ir.FAdd, ir.F32, north, south)
				ewSum := mbu.Bin(ir.FAdd, ir.F32, west, east)
				pa := ElemAddr(mbu, pw2, idx, 4)
				pv := mbu.Load(ir.F32, pa, 0)
				nv := mbu.Call("hs_cell", 1, cv, nsSum, ewSum, pv)[0]
				na := ElemAddr(mbu, nxt, idx, 4)
				mbu.Store(ir.F32, na, 0, nv)
			}
			xl.End(mbu)
		}
		yl.End(mbu)
		// Swap the ping-pong buffers.
		tmp := mbu.Mov(ir.I64, cur)
		mbu.MovTo(ir.I64, cur, nxt)
		mbu.MovTo(ir.I64, nxt, tmp)
	}
	il.End(mbu)
	mbu.Ret()

	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
