package workloads

import (
	"math"
	"testing"
)

// Domain-invariant tests: each benchmark's golden implementation must
// satisfy the mathematical properties of the algorithm it claims to be.
// These catch "plausible-looking but wrong" kernels that output-diffing
// against the same implementation never would.

// Put-call parity: call − put = S − K·e^(−rT), a structural identity of
// the Black-Scholes formulas that must hold to float32 accuracy.
func TestBlackscholesPutCallParity(t *testing.T) {
	for _, o := range bsPool(newTestRng(1), 64) {
		call := bsPriceGold(option{o.s, o.k, o.r, o.v, o.t, 0})
		put := bsPriceGold(option{o.s, o.k, o.r, o.v, o.t, 1})
		parity := float64(o.s) - float64(o.k)*float64(expf(-o.r*o.t))
		got := float64(call - put)
		if math.Abs(got-parity) > 1e-3*math.Abs(parity)+1e-3 {
			t.Fatalf("parity violated for %+v: call-put = %v, S-Ke^-rT = %v", o, got, parity)
		}
	}
}

// Monotonicity: a call is worth more when the spot is higher, all else
// equal.
func TestBlackscholesCallMonotoneInSpot(t *testing.T) {
	base := option{s: 100, k: 100, r: 0.05, v: 0.3, t: 1, otype: 0}
	prev := bsPriceGold(base)
	for s := float32(101); s <= 120; s += 1 {
		o := base
		o.s = s
		p := bsPriceGold(o)
		if p < prev-1e-4 {
			t.Fatalf("call price fell as spot rose: %v at S=%v (prev %v)", p, s, prev)
		}
		prev = p
	}
}

// Parseval: the FFT preserves signal energy up to the transform's
// normalization — Σ|x|² = (1/N)·Σ|X|².
func TestFFTParseval(t *testing.T) {
	n := 256
	re := make([]float32, n)
	var inputEnergy float64
	for i := range re {
		re[i] = sinf(float32(i)*0.3) + 0.25*cosf(float32(i)*0.11)
		inputEnergy += float64(re[i]) * float64(re[i])
	}
	// fftGold expects bit-reversed input ordering.
	logn := 8
	pre := make([]float32, n)
	for i, v := range re {
		pre[bitReverse(i, logn)] = v
	}
	pim := make([]float32, n)
	fftGold(pre, pim)
	var outputEnergy float64
	for i := range pre {
		outputEnergy += float64(pre[i])*float64(pre[i]) + float64(pim[i])*float64(pim[i])
	}
	outputEnergy /= float64(n)
	if rel := math.Abs(outputEnergy-inputEnergy) / inputEnergy; rel > 1e-3 {
		t.Fatalf("Parseval violated: in %v vs out/N %v (rel %v)", inputEnergy, outputEnergy, rel)
	}
}

// FFT of a pure tone concentrates energy in two bins.
func TestFFTPureTone(t *testing.T) {
	n, k := 256, 16
	logn := 8
	re := make([]float32, n)
	im := make([]float32, n)
	for i := 0; i < n; i++ {
		v := cosf(2 * 3.1415927 * float32(k) * float32(i) / float32(n))
		re[bitReverse(i, logn)] = v
	}
	fftGold(re, im)
	var total, peak float64
	for i := 0; i < n; i++ {
		mag := float64(re[i])*float64(re[i]) + float64(im[i])*float64(im[i])
		total += mag
		if i == k || i == n-k {
			peak += mag
		}
	}
	if peak/total < 0.99 {
		t.Fatalf("tone energy not concentrated: %.4f of total in bins %d/%d", peak/total, k, n-k)
	}
}

// Inverse kinematics: forward kinematics of the solved joint angles must
// land back on the target.
func TestInversek2jForwardConsistency(t *testing.T) {
	rng := newTestRng(9)
	for i := 0; i < 200; i++ {
		t1 := float32(rng.Float64()) * 1.2
		t2 := float32(rng.Float64())*2 + 0.2 // stay away from the singular fully-straight pose
		x := ikL1*cosf(t1) + ikL2*cosf(t1+t2)
		y := ikL1*sinf(t1) + ikL2*sinf(t1+t2)
		s1, s2 := ikGold(x, y)
		xr := ikL1*cosf(s1) + ikL2*cosf(s1+s2)
		yr := ikL1*sinf(s1) + ikL2*sinf(s1+s2)
		if d := math.Hypot(float64(xr-x), float64(yr-y)); d > 1e-3 {
			t.Fatalf("IK round trip missed target by %v at pose (%v, %v)", d, t1, t2)
		}
	}
}

// Triangle intersection is invariant under cyclic relabeling of the
// query triangle's vertices.
func TestJmeintCyclicInvariance(t *testing.T) {
	rng := newTestRng(13)
	for i := 0; i < 500; i++ {
		var v [9]float32
		for j := range v {
			v[j] = float32(rng.Float64()*2 - 0.5)
		}
		base := tritriGold(v)
		rot := [9]float32{v[3], v[4], v[5], v[6], v[7], v[8], v[0], v[1], v[2]}
		if got := tritriGold(rot); got != base {
			t.Fatalf("classification changed under cyclic relabel: %v -> %v for %v", base, got, v)
		}
	}
}

// A triangle far above the plane never intersects; one passing through
// the canonical triangle's interior always does.
func TestJmeintKnownCases(t *testing.T) {
	far := [9]float32{0, 0, 5, 1, 0, 6, 0, 1, 5}
	if tritriGold(far) {
		t.Error("triangle above the plane reported intersecting")
	}
	through := [9]float32{0.2, 0.2, -1, 0.3, 0.2, 1, 0.2, 0.3, 1}
	if !tritriGold(through) {
		t.Error("triangle piercing the canonical interior reported disjoint")
	}
}

// Quantization idempotence: re-encoding a reconstructed group is
// (near-)lossless because its coefficients already sit on the quantizer
// grid.
func TestJPEGRequantizationStable(t *testing.T) {
	px := []float32{100, 104, 108, 112, 116, 120, 124, 128}
	out1 := make([]float32, 8)
	jpegGoldRow(px, out1)
	out2 := make([]float32, 8)
	jpegGoldRow(out1, out2)
	for i := range out1 {
		if d := math.Abs(float64(out1[i] - out2[i])); d > 1e-3 {
			t.Fatalf("recompression drifted at %d: %v -> %v", i, out1[i], out2[i])
		}
	}
}

// Lloyd's algorithm never increases the clustering objective between
// iterations.
func TestKMeansObjectiveNonIncreasing(t *testing.T) {
	w, h := 32, 32
	r, g, b := SyntheticRGBImage(w, h, 77)
	n := w * h
	cent := kmInitCent
	objective := func(c *[kmK][3]float32) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			a := assignGold(r[i], g[i], b[i], c)
			dr := float64(r[i] - c[a][0])
			dg := float64(g[i] - c[a][1])
			db := float64(b[i] - c[a][2])
			sum += dr*dr + dg*dg + db*db
		}
		return sum
	}
	prev := objective(&cent)
	for it := 0; it < 4; it++ {
		var sum [kmK][3]float32
		var cnt [kmK]float32
		for i := 0; i < n; i++ {
			a := assignGold(r[i], g[i], b[i], &cent)
			sum[a][0] += r[i]
			sum[a][1] += g[i]
			sum[a][2] += b[i]
			cnt[a]++
		}
		for c := 0; c < kmK; c++ {
			if cnt[c] > 0 {
				cent[c][0] = sum[c][0] / cnt[c]
				cent[c][1] = sum[c][1] / cnt[c]
				cent[c][2] = sum[c][2] / cnt[c]
			}
		}
		cur := objective(&cent)
		if cur > prev*(1+1e-5) {
			t.Fatalf("objective rose at iteration %d: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

// A constant image has no edges; a vertical step produces a response
// exactly along the step.
func TestSobelKnownResponses(t *testing.T) {
	flat := [9]float32{7, 7, 7, 7, 7, 7, 7, 7, 7}
	if got := sobelGold(flat); got != 0 {
		t.Errorf("flat window magnitude = %v, want 0", got)
	}
	step := [9]float32{0, 0, 100, 0, 0, 100, 0, 0, 100}
	if got := sobelGold(step); got < 100 {
		t.Errorf("step-edge magnitude = %v, want strong response", got)
	}
	// Symmetry: mirroring the window flips gx's sign but not |G|.
	mirror := [9]float32{100, 0, 0, 100, 0, 0, 100, 0, 0}
	if a, b := sobelGold(step), sobelGold(mirror); a != b {
		t.Errorf("mirror asymmetry: %v vs %v", a, b)
	}
}

// With no power and a uniform temperature field, hotspot must hold the
// temperature exactly (ambient equals the field).
func TestHotspotEquilibrium(t *testing.T) {
	if got := hsCellGold(hsAmb, 2*hsAmb, 2*hsAmb, 0); got != hsAmb {
		t.Errorf("equilibrium cell moved: %v -> %v", hsAmb, got)
	}
	// Power injection raises temperature.
	if got := hsCellGold(hsAmb, 2*hsAmb, 2*hsAmb, 2); got <= hsAmb {
		t.Errorf("powered cell did not warm: %v", got)
	}
	// A cell hotter than its neighbors cools toward them.
	hot := hsAmb + 40
	if got := hsCellGold(hot, 2*hsAmb, 2*hsAmb, 0); got >= hot {
		t.Errorf("hot cell did not cool: %v -> %v", hot, got)
	}
}

// The pair potential is even in the displacement and decays with
// distance.
func TestLavaMDPotentialProperties(t *testing.T) {
	v1, f1 := pairGold(0.5, -0.25, 0.125)
	v2, f2 := pairGold(-0.5, 0.25, -0.125)
	if v1 != v2 || f1 != f2 {
		t.Errorf("potential not even: (%v,%v) vs (%v,%v)", v1, f1, v2, f2)
	}
	vNear, _ := pairGold(0.1, 0, 0)
	vFar, _ := pairGold(2, 0, 0)
	if vNear <= vFar {
		t.Errorf("potential does not decay: near %v, far %v", vNear, vFar)
	}
	v0, fs0 := pairGold(0, 0, 0)
	if v0 != 1 || fs0 != 2*lavaAlpha {
		t.Errorf("zero-displacement potential = (%v, %v)", v0, fs0)
	}
}

// The diffusion coefficient is clamped to [0, 1] and equals 1/(1+den2)
// in the flat-gradient case.
func TestSRADCoefficientRange(t *testing.T) {
	rng := newTestRng(21)
	for i := 0; i < 500; i++ {
		c := float32(rng.Float64()*200 + 10)
		n := c + float32(rng.NormFloat64()*8)
		s := c + float32(rng.NormFloat64()*8)
		wv := c + float32(rng.NormFloat64()*8)
		e := c + float32(rng.NormFloat64()*8)
		q0 := float32(rng.Float64()*0.3 + 0.01)
		coeff := sradCoeffGold(c, n, s, wv, e, q0)
		if coeff < 0 || coeff > 1 || math.IsNaN(float64(coeff)) {
			t.Fatalf("coefficient out of range: %v", coeff)
		}
	}
}

// Homogeneous-speckle regions (local statistic equal to the global one)
// should diffuse strongly: the coefficient approaches 1.
func TestSRADHomogeneousRegionDiffuses(t *testing.T) {
	// dN=dS=dW=dE=0: qsqr=0; den2 = -1/(1+q0); c = 1/(1-1/(1+q0)).
	got := sradCoeffGold(100, 100, 100, 100, 100, 0.25)
	if got != 1 { // clamped at 1
		t.Errorf("flat region coefficient = %v, want 1 (clamped)", got)
	}
}
